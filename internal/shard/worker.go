package shard

// The worker side: one process executes one shard of the sweep as a
// shard-scoped experiment (core.ShardRange), journaling only its cells.
// Workers are spawned by the supervisor through a Runner; ExecRunner is
// the production implementation (re-exec the binary with the hidden
// -shardworker flag), and tests substitute in-process or fault-injected
// runners.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"

	"asmp/internal/core"
	"asmp/internal/journal"
	"asmp/internal/resultcache"
)

// IncompleteError reports a worker whose sweep finished but whose
// journal did not: an append or close failed, so the file cannot be
// trusted to hold every cell. The supervisor treats it like a crash
// (the journal's valid prefix resumes fine).
type IncompleteError struct {
	// Path is the shard journal.
	Path string
	// Err is the underlying journal failure.
	Err error
}

func (e *IncompleteError) Error() string {
	return fmt.Sprintf("shard: journal %s is incomplete: %v", e.Path, e.Err)
}

func (e *IncompleteError) Unwrap() error { return e.Err }

// Worker runs one shard to completion: the experiment restricted to r,
// journaled at journalPath (resumed when resume is set, created fresh
// otherwise). Per-cell failures are results, not worker failures — the
// merge renders them as ERR cells — so Worker only errors when the
// shard's journal cannot be trusted (typed refusals and DamagedError
// pass through, journal write failures become *IncompleteError) or the
// sweep was cancelled (an error matching core.ErrCancelled).
func Worker(exp core.Experiment, r core.ShardRange, journalPath string, resume bool, wrap journal.WrapSink) error {
	configs, runs, _ := exp.Grid()
	if n := len(configs) * runs; r.Hi > n {
		return fmt.Errorf("shard: range %s outside the %d-cell grid", r, n)
	}
	exp.Shard = &r

	var out *core.Outcome
	if resume {
		log, w, err := journal.ResumeVia(journalPath, wrap)
		if err != nil {
			return err
		}
		exp.Journal = w
		out, err = exp.Resume(log)
		if err != nil {
			// The typed refusal is the story; a close failure on this
			// already-abandoned journal adds nothing.
			if cerr := w.Close(); cerr != nil && err == nil {
				err = cerr
			}
			return err
		}
		if err := w.Close(); err != nil {
			return &IncompleteError{Path: journalPath, Err: err}
		}
	} else {
		w, err := journal.CreateVia(journalPath, wrap)
		if err != nil {
			return err
		}
		exp.Journal = w
		out = exp.Run()
		if err := w.Close(); err != nil {
			return &IncompleteError{Path: journalPath, Err: err}
		}
	}
	if out.JournalErr != nil {
		return &IncompleteError{Path: journalPath, Err: out.JournalErr}
	}
	for _, cr := range out.PerConfig {
		if cr.Cancelled() > 0 {
			return fmt.Errorf("shard %s: %w", r, core.ErrCancelled)
		}
	}
	return nil
}

// Runner spawns one attempt of one shard and blocks until it exits; a
// crashed or failed worker is a non-nil error. resume tells the worker
// to resume spec.Journal's valid prefix instead of starting fresh.
type Runner func(spec Spec, resume bool) error

// WorkerEnv marks a process as a re-exec'd shard worker; ExecRunner
// sets it so test binaries can divert into worker mode from TestMain.
const WorkerEnv = "ASMP_SHARD_EXEC"

// ExitCancelled is the exit code of a cancelled worker (128+SIGINT,
// the shell convention — the same code the CLI uses for an interrupted
// sweep). ExecRunner maps it back to an error wrapping
// core.ErrCancelled, so cancellation stays typed across the exec
// boundary and the supervisor's contract (no respawn, no merge, exit
// with the resume hint) holds for process workers exactly as it does
// for in-process ones.
const ExitCancelled = 130

// lockedWriter serializes writes from concurrently exiting workers
// into the supervisor's single stderr (os/exec copies each child's
// stderr from its own goroutine).
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// SyncWriter wraps w so concurrent writers — the supervisor's own log
// lines and the stderr streams of exiting workers — never race on the
// underlying writer. The supervisor's caller wraps its stderr once and
// shares the result with Supervise's Logf and ExecRunner.
func SyncWriter(w io.Writer) io.Writer { return &lockedWriter{w: w} }

// ExecRunner returns the production Runner: re-exec bin with the
// sweep's own arguments plus the shard's journal and the hidden
// -shardworker flag. The workers' stderr streams are forwarded through
// one lock (supervision messages interleave by line, never by byte);
// their stdout — the per-shard report nobody reads — is discarded.
func ExecRunner(bin string, baseArgs []string, stderr io.Writer) Runner {
	shared := &lockedWriter{w: stderr}
	return func(spec Spec, resume bool) error {
		args := append([]string{}, baseArgs...)
		args = append(args, "-journal", spec.Journal)
		if resume {
			args = append(args, "-resume")
		}
		args = append(args, "-shardworker", spec.Range.String())
		cmd := exec.Command(bin, args...)
		// Export the supervisor's disk result-cache directory so every
		// worker — first spawns and post-crash respawns alike — shares
		// one cache: a respawned worker warm-hits the cells its dead
		// predecessor already published instead of re-simulating them.
		// Appended last, the entry overrides any inherited value, so a
		// cache-less supervisor (empty dir) also disables its workers'.
		cmd.Env = append(os.Environ(),
			WorkerEnv+"=1",
			resultcache.EnvDir+"="+core.ResultCacheDir())
		cmd.Stdout = io.Discard
		cmd.Stderr = shared
		err := cmd.Run()
		var ee *exec.ExitError
		if errors.As(err, &ee) && ee.ExitCode() == ExitCancelled {
			return fmt.Errorf("shard %s: worker exited %d: %w", spec.Range, ExitCancelled, core.ErrCancelled)
		}
		return err
	}
}

// ExtractWorker strips the hidden -shardworker flag from a CLI
// argument list before normal flag parsing, returning the remaining
// arguments and the shard range. Like faultio.ExtractCrashAt it is
// invisible to -h: only the supervisor spawns it, as "-shardworker
// index/of:lo-hi" (or the = and double-dash forms).
func ExtractWorker(args []string) (rest []string, r core.ShardRange, ok bool, err error) {
	rest = make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		arg := args[i]
		name := strings.TrimPrefix(strings.TrimPrefix(arg, "-"), "-")
		var spec string
		switch {
		case name == "shardworker":
			i++
			if i >= len(args) {
				return nil, core.ShardRange{}, false, fmt.Errorf("shard: %s needs a range (index/of:lo-hi)", arg)
			}
			spec = args[i]
		case strings.HasPrefix(name, "shardworker="):
			spec = strings.TrimPrefix(name, "shardworker=")
		default:
			rest = append(rest, arg)
			continue
		}
		r, err = core.ParseShardRange(spec)
		if err != nil {
			return nil, core.ShardRange{}, false, err
		}
		ok = true
	}
	return rest, r, ok, nil
}

// cancelled reports whether err marks a cancelled worker (the one
// failure the supervisor must not retry).
func cancelled(err error) bool { return errors.Is(err, core.ErrCancelled) }
