package sim

import (
	"strings"
	"testing"
)

// TestWakeSteadyStateAllocs pins the engine's hottest path: parking a
// proc and waking it costs no allocations once the proc exists. Wake
// schedules a typed event the queue recycles; the park/resume handoff
// reuses the proc's channels.
func TestWakeSteadyStateAllocs(t *testing.T) {
	e := NewEnv(1)
	p := e.Go("parker", func(p *Proc) {
		for {
			p.Block()
		}
	})
	e.Run() // start the proc and let it park

	allocs := testing.AllocsPerRun(200, func() {
		e.Wake(p)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("wake/resume cycle allocates %v per run, want 0", allocs)
	}
	e.Close()
}

// TestQueueSteadyStateAllocs pins the request-queue hot path: a Put that
// wakes a parked consumer which Gets the item and re-parks allocates
// nothing in steady state. The backlog array rewinds on drain, the
// getters array is reused, and the wake event is recycled.
func TestQueueSteadyStateAllocs(t *testing.T) {
	e := NewEnv(1)
	q := NewQueue[int](e)
	consumed := 0
	e.Go("consumer", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
			consumed++
		}
	})
	e.Run() // consumer parks on the empty queue

	allocs := testing.AllocsPerRun(200, func() {
		q.Put(1)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("Put/Get cycle allocates %v per run, want 0", allocs)
	}
	if consumed == 0 {
		t.Fatal("consumer never ran")
	}
	q.Close()
	e.Run()
	e.Close()
}

// TestQueueReleasesConsumedSlots verifies the retention fix: consumed
// backlog slots are zeroed immediately, the dead prefix is bounded by
// compaction while a backlog persists, and a full drain rewinds the
// backing array for reuse.
func TestQueueReleasesConsumedSlots(t *testing.T) {
	e := NewEnv(1)
	q := NewQueue[*int](e)
	e.Go("churn", func(p *Proc) {
		const n = 1024
		for i := 0; i < n; i++ {
			v := i
			q.Put(&v)
		}
		for i := 0; i < n; i++ {
			if _, ok := q.TryGet(p); !ok {
				t.Error("TryGet missed a queued item")
				return
			}
			for j := 0; j < q.head; j++ {
				if q.items[j] != nil {
					t.Errorf("consumed slot %d still holds a pointer", j)
					return
				}
			}
			if q.head >= 64 && q.head*2 >= len(q.items) {
				t.Errorf("dead prefix not compacted: head=%d len=%d", q.head, len(q.items))
				return
			}
		}
		if q.head != 0 || len(q.items) != 0 {
			t.Errorf("drained queue did not rewind: head=%d len=%d", q.head, len(q.items))
		}
	})
	e.Run()
	e.Close()
}

// TestKillAllDeterministicTeardown is the regression test for the
// map-iteration hazard in KillAll: procs must be killed in ascending PID
// order so the wake events they receive get identical sequence numbers
// run after run, and the teardown portion of the event stream — hence
// the run digest — replays byte-identically. With map-order teardown
// this test flickers within a few iterations.
func TestKillAllDeterministicTeardown(t *testing.T) {
	teardown := func() string {
		e := NewEnv(7)
		var exits []string
		for i := 0; i < 12; i++ {
			name := string(rune('a' + i))
			p := e.Go(name, func(p *Proc) {
				p.Block()
			})
			p.OnExit(func() { exits = append(exits, name) })
		}
		e.Run() // everyone parks
		e.KillAll()
		e.Run() // everyone unwinds
		return strings.Join(exits, ",")
	}
	want := teardown()
	for i := 0; i < 25; i++ {
		if got := teardown(); got != want {
			t.Fatalf("teardown order diverged on iteration %d:\n got %s\nwant %s", i, got, want)
		}
	}
}
