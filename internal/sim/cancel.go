package sim

// This file implements cooperative run cancellation — the third leg of
// resilient execution next to the watchdogs. A cancel channel (closed by
// a SIGINT handler, a test, or a supervising sweep) is checked by the
// dispatch loop before every event, so a cancelled simulation stops at
// the next event boundary: cleanly, at a well-defined virtual time, with
// the environment still consistent for teardown. Like the watchdogs, a
// tripped cancellation poisons the environment (every later Run/RunUntil
// fails immediately) and surfaces through the Run/RunUntil panic
// contract, which core.ExecuteSafe converts into a per-run error that
// report renders as a CANCELLED cell.

import (
	"fmt"

	"asmp/internal/simtime"
)

// CancelledError reports that a run was stopped by its cancel signal.
type CancelledError struct {
	// At is the virtual time the run had reached when it was cancelled.
	At simtime.Time
	// Events is the number of events dispatched up to that point.
	Events int
}

// Error implements error.
func (e *CancelledError) Error() string {
	return fmt.Sprintf("sim: run cancelled at %v after %d events", e.At, e.Events)
}

// SetCancel installs a cancel signal: when c is closed (or receives a
// value), the dispatch loop stops before the next event and the
// environment trips with a *CancelledError. Pass nil to detach.
// Cancellation is inherently tied to wall-clock timing, so *where* a run
// stops is not deterministic — which is why cancelled runs are never
// journaled as results and a resumed sweep re-executes them from
// scratch.
func (e *Env) SetCancel(c <-chan struct{}) { e.cancel = c }

// cancelled reports whether the cancel signal has fired.
func (e *Env) cancelled() bool {
	if e.cancel == nil {
		return false
	}
	select {
	case <-e.cancel:
		return true
	default:
		return false
	}
}
