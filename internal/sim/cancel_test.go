package sim

import (
	"errors"
	"testing"

	"asmp/internal/simtime"
)

// nullExecutor satisfies compute requests immediately (no scheduler
// needed for engine-level tests).
type nullExecutor struct{ env *Env }

func (x *nullExecutor) Compute(p *Proc, cycles, mem float64) {
	x.env.After(simtime.Millisecond, p.FinishCompute)
}
func (x *nullExecutor) Cancel(p *Proc)   {}
func (x *nullExecutor) ProcExit(p *Proc) {}

func TestCancelStopsRun(t *testing.T) {
	env := NewEnv(1)
	env.SetExecutor(&nullExecutor{env})
	cancel := make(chan struct{})
	env.SetCancel(cancel)
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks == 10 {
			close(cancel)
		}
		env.After(simtime.Millisecond, tick)
	}
	env.After(simtime.Millisecond, tick)

	_, err := env.RunGuarded(simtime.Never)
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("RunGuarded err = %v, want *CancelledError", err)
	}
	if ticks != 10 {
		t.Errorf("dispatched %d ticks after cancel, want exactly 10", ticks)
	}
	if ce.Events == 0 || ce.At == 0 {
		t.Errorf("cancelled error carries no position: %+v", ce)
	}
	// A cancelled environment is poisoned like a tripped watchdog.
	if _, err2 := env.RunGuarded(simtime.Never); !errors.As(err2, &ce) {
		t.Errorf("poisoned env RunGuarded err = %v, want the cancellation", err2)
	}
	env.Close()
}

func TestCancelPanicsThroughRun(t *testing.T) {
	env := NewEnv(1)
	cancel := make(chan struct{})
	close(cancel)
	env.SetCancel(cancel)
	env.After(simtime.Second, func() {})
	defer func() {
		r := recover()
		var ce *CancelledError
		if err, ok := r.(error); !ok || !errors.As(err, &ce) {
			t.Fatalf("Run panicked with %v, want *CancelledError", r)
		}
		env.Close()
	}()
	env.Run()
	t.Fatal("Run returned despite pre-closed cancel channel")
}

func TestNilCancelIsFree(t *testing.T) {
	env := NewEnv(1)
	n := 0
	env.After(simtime.Millisecond, func() { n++ })
	if env.Run(); n != 1 {
		t.Fatalf("event did not run: n=%d", n)
	}
	env.Close()
}
