// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine. Simulated threads ("procs") are written as ordinary
// Go functions; they run on real goroutines but the engine enforces a
// strict one-at-a-time handoff between the kernel loop and the active
// proc, so a simulation is a pure function of its inputs and seed.
//
// The engine itself knows nothing about CPUs. Compute requests are
// delegated to an Executor — the OS-scheduler model in internal/sched —
// which decides where and when the requested cycles retire. Everything
// else (sleeping, locks, condition variables, barriers, queues) is
// handled inside this package.
package sim

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"asmp/internal/simtime"
	"asmp/internal/xrand"
)

// CPUSet is a bitmask of core IDs a proc may run on. The zero value means
// "any core".
type CPUSet uint64

// Set returns s with core id added.
func (s CPUSet) Set(id int) CPUSet { return s | 1<<uint(id) }

// Has reports whether core id is in the set. An empty set contains every
// core.
func (s CPUSet) Has(id int) bool { return s == 0 || s&(1<<uint(id)) != 0 }

// Count returns the number of explicitly set cores (0 for "any").
func (s CPUSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Single returns a set containing only core id.
func Single(id int) CPUSet { return CPUSet(1) << uint(id) }

// Executor models CPU execution for the engine. Implementations must be
// single-threaded (they are only invoked from the kernel context or the
// active proc's context, never concurrently) and must invoke
// p.FinishCompute from a scheduled event, never synchronously from
// Compute.
type Executor interface {
	// Compute retires cycles of work for p, honouring p's affinity, and
	// calls p.FinishCompute at the simulated time the work completes.
	// memSeconds is additional memory-stall time that occupies the core
	// for a fixed wall-clock duration regardless of the core's clock
	// duty cycle — the paper's stop-clock mechanism slows the processor
	// but not the memory system.
	Compute(p *Proc, cycles, memSeconds float64)
	// Cancel aborts an in-flight Compute for p; FinishCompute must not
	// be called afterwards. Cancelling a proc with no in-flight compute
	// is a no-op.
	Cancel(p *Proc)
	// ProcExit tells the executor p has exited and will never compute
	// again, so any per-proc state can be released.
	ProcExit(p *Proc)
}

// Env is a simulation environment: the event queue, the proc table and
// the executor. Create one with NewEnv, attach an executor, spawn procs
// with Go, and drive it with Run or RunUntil.
type Env struct {
	queue simtime.Queue
	rand  *xrand.Rand
	exec  Executor

	nextPID int
	// live holds every spawned, not-yet-retired proc. Order is
	// unspecified (retirement swap-removes); consumers that need
	// determinism sort by PID. A slice beats a map here because spawn
	// and exit are hot paths and membership is tracked by Proc.liveIdx.
	live     []*Proc
	running  *Proc
	panicVal any
	closed   bool

	limits  Limits
	cancel  <-chan struct{}
	events  int
	tripped error

	// procSlab and randSlab batch the per-spawn allocations: spawning N
	// procs costs N/32 backing allocations for the Proc structs and
	// their random streams instead of 2N. Slots are handed out once and
	// never recycled, so proc identity is unaffected.
	procSlab []Proc
	randSlab []xrand.Rand

	// workerq feeds spawned procs to pooled worker goroutines, and
	// idleWorkers counts workers parked on workerq. A worker that
	// finishes one proc's body loops back for the next spawn, so
	// churn-heavy workloads pay goroutine creation (and the go
	// statement's closure) only at peak concurrency, not per proc. Only
	// the kernel context touches idleWorkers.
	workerq     chan *Proc
	idleWorkers int
}

// NewEnv returns an environment whose randomness derives entirely from
// seed.
func NewEnv(seed uint64) *Env {
	return &Env{
		rand:    xrand.New(seed),
		workerq: make(chan *Proc),
	}
}

// SetExecutor installs the CPU model. It must be called before any proc
// issues a Compute.
func (e *Env) SetExecutor(x Executor) { e.exec = x }

// Executor returns the installed CPU model (nil if none).
func (e *Env) Executor() Executor { return e.exec }

// Now returns the current simulated time.
func (e *Env) Now() simtime.Time { return e.queue.Now() }

// Rand returns the environment's root random stream. Prefer per-proc
// streams (Proc.Rand) inside workload code.
func (e *Env) Rand() *xrand.Rand { return e.rand }

// After schedules fn to run in kernel context d from now.
//
//asmp:allow refdiscipline closure events are never recycled through the free list (simtime recycles only payload events), so the bare pointer stays valid for the simulation's lifetime
func (e *Env) After(d simtime.Duration, fn func()) *simtime.Event {
	return e.queue.After(d, fn)
}

// At schedules fn to run in kernel context at time t.
//
//asmp:allow refdiscipline closure events are never recycled through the free list, so the bare pointer stays valid for the simulation's lifetime
func (e *Env) At(t simtime.Time, fn func()) *simtime.Event {
	return e.queue.Schedule(t, fn)
}

// AfterCall schedules h.HandleEvent(kind, arg) to run in kernel context
// d from now, through the queue's allocation-free payload path. The
// returned Ref is generation-checked (see simtime.ScheduleCall), so a
// handle held past firing is inert rather than dangling.
func (e *Env) AfterCall(d simtime.Duration, h simtime.Handler, kind int, arg any) simtime.Ref {
	return e.queue.AfterCall(d, h, kind, arg)
}

// AtCall schedules h.HandleEvent(kind, arg) to run in kernel context at
// time t, with AfterCall's allocation-free contract.
func (e *Env) AtCall(t simtime.Time, h simtime.Handler, kind int, arg any) simtime.Ref {
	return e.queue.ScheduleCall(t, h, kind, arg)
}

// CancelEvent cancels a pending event scheduled with After or At.
func (e *Env) CancelEvent(ev *simtime.Event) { e.queue.Cancel(ev) }

// CancelCall cancels a pending payload event scheduled with AfterCall or
// AtCall. A zero or stale Ref is a no-op.
func (e *Env) CancelCall(r simtime.Ref) { e.queue.CancelRef(r) }

// NumLive returns the number of procs that have been spawned and have not
// yet exited.
func (e *Env) NumLive() int { return len(e.live) }

// Event kinds for the engine's typed (allocation-free) events. The
// payload is always the subject *Proc; Env is the simtime.Handler.
const (
	evStart = iota // first handoff to a freshly spawned proc
	evWake         // resume a parked proc at the current time
	evSleep        // a Proc.Sleep timer expired
)

// HandleEvent implements simtime.Handler, dispatching the engine's
// typed events. The (kind, *Proc) payload replaces the per-call closure
// the hot wake/start/sleep paths used to allocate.
func (e *Env) HandleEvent(kind int, arg any) {
	p := arg.(*Proc)
	switch kind {
	case evStart:
		e.start(p)
	case evWake:
		e.resume(p)
	case evSleep:
		p.sleepEv = simtime.Ref{}
		e.resume(p)
	default:
		panic(fmt.Sprintf("sim: unknown event kind %d", kind))
	}
}

// Go spawns a new proc running fn. The proc starts at the current
// simulated time, after the caller yields control. Go may be called from
// kernel context or from a running proc.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Go on closed Env")
	}
	e.nextPID++
	if len(e.procSlab) == 0 {
		e.procSlab = make([]Proc, 32)
	}
	p := &e.procSlab[0]
	e.procSlab = e.procSlab[1:]
	if len(e.randSlab) == 0 {
		e.randSlab = make([]xrand.Rand, 32)
	}
	rng := &e.randSlab[0]
	e.randSlab = e.randSlab[1:]
	e.rand.SplitInto(rng)
	*p = Proc{
		env:      e,
		id:       e.nextPID,
		name:     name,
		fn:       fn,
		rand:     rng,
		toProc:   make(chan struct{}),
		toKernel: make(chan struct{}),
	}
	p.liveIdx = len(e.live)
	e.live = append(e.live, p)
	e.queue.AfterCall(0, e, evStart, p)
	return p
}

// start launches p's goroutine and gives it its first slice of control.
func (e *Env) start(p *Proc) {
	if p.done || p.killed {
		// Killed before it ever ran: just retire it.
		p.done = true
		e.finish(p)
		return
	}
	// Hand the proc to a pooled worker goroutine, growing the pool only
	// when every worker is busy. The send is unbuffered: an idle worker
	// is either parked on workerq or on its way back to it after
	// reporting its previous proc done, so the handoff cannot deadlock.
	if e.idleWorkers > 0 {
		e.idleWorkers--
	} else {
		go e.procWorker()
	}
	e.workerq <- p
	p.launched = true
	p.waiting = true
	e.resume(p)
}

// procWorker runs proc bodies from the spawn queue until the Env closes.
// Proc panics (including the kill signal) are recovered inside
// Proc.main, so one worker survives any number of procs.
func (e *Env) procWorker() {
	for p := range e.workerq {
		p.main()
	}
}

// resume transfers control to p until its next yield. Kernel context only.
func (e *Env) resume(p *Proc) {
	if p.done || !p.launched || !p.waiting {
		return
	}
	prev := e.running
	e.running = p
	p.waiting = false
	p.toProc <- struct{}{}
	<-p.toKernel
	e.running = prev
	if p.done {
		// The worker goroutine that ran p is looping back to workerq.
		e.idleWorkers++
		e.finish(p)
	}
	if e.panicVal != nil {
		v := e.panicVal
		e.panicVal = nil
		panic(v)
	}
}

// finish retires an exited proc.
func (e *Env) finish(p *Proc) {
	if p.liveIdx < 0 {
		return
	}
	last := len(e.live) - 1
	moved := e.live[last]
	e.live[p.liveIdx] = moved
	moved.liveIdx = p.liveIdx
	e.live[last] = nil
	e.live = e.live[:last]
	p.liveIdx = -1
	if e.exec != nil {
		e.exec.ProcExit(p)
	}
	for _, fn := range p.exitHooks {
		fn()
	}
	p.exitHooks = nil
}

// wake schedules p to be resumed at the current time, after the active
// context yields. It is the only correct way to unblock a proc. The
// typed event allocates nothing: the queue recycles it once it fires.
func (e *Env) wake(p *Proc) {
	if p.done {
		return
	}
	e.queue.AfterCall(0, e, evWake, p)
}

// Wake schedules a proc parked with Proc.Block to resume at the current
// time, after the active context yields. Waking a proc that is not
// parked, or is dead, is a no-op at resume time, but spurious wakeups of
// procs parked on *other* conditions corrupt primitives — only wake procs
// you parked.
func (e *Env) Wake(p *Proc) { e.wake(p) }

// Kill requests that p terminate the next time it would run. Any pending
// compute or sleep is cancelled. Kill is intended for teardown: a killed
// proc blocked inside a synchronization primitive unwinds immediately and
// may leave that primitive held (see package comment on sync.go).
func (e *Env) Kill(p *Proc) {
	if p == nil || p.done || p.killed {
		return
	}
	p.killed = true
	if p == e.running {
		// Self-kill: unwinds at the proc's next yield, or immediately if
		// it calls Exit. Nothing else to do here.
		return
	}
	// CancelRef is inert on a zero or stale Ref, so no pending-check is
	// needed before cancelling a sleep timer that may have already fired.
	e.queue.CancelRef(p.sleepEv)
	p.sleepEv = simtime.Ref{}
	if e.exec != nil {
		e.exec.Cancel(p)
	}
	e.wake(p)
}

// KillAll kills every live proc. Call Run afterwards (or let the caller's
// Run continue) to let them unwind. Procs are killed in ascending PID
// order — never map-iteration order — so the wake events Kill schedules
// get deterministic sequence numbers and teardown replays identically
// run to run.
func (e *Env) KillAll() {
	procs := make([]*Proc, len(e.live))
	copy(procs, e.live)
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	for _, p := range procs {
		if p != e.running {
			e.Kill(p)
		}
	}
}

// Run dispatches events until none remain. It returns the number of
// events fired. Live procs may remain blocked when Run returns (e.g. a
// server waiting for requests that will never come); use Close to reap
// them. If limits are armed (SetLimits) and a guard trips, Run panics
// with the structured error; use RunGuarded to receive it as a value.
func (e *Env) Run() int {
	n, err := e.drive(simtime.Never)
	if err != nil {
		panic(err)
	}
	return n
}

// RunUntil dispatches events until the queue is empty or the next event
// would fire after the deadline, then advances the clock to the deadline.
// If limits are armed (SetLimits) and a guard trips — including deadlock
// detection on an early quiesce — RunUntil panics with the structured
// error; use RunGuarded to receive it as a value.
func (e *Env) RunUntil(deadline simtime.Time) int {
	n, err := e.drive(deadline)
	if err != nil {
		panic(err)
	}
	return n
}

// Close kills all remaining procs and drains the queue so no goroutines
// leak. The environment must not be used afterwards.
func (e *Env) Close() {
	if e.closed {
		return
	}
	// Repeated rounds: unwinding procs can spawn wakeups for others.
	for i := 0; i < 1000 && len(e.live) > 0; i++ {
		e.KillAll()
		e.queue.Run()
	}
	e.closed = true
	close(e.workerq) // releases the idle worker goroutines
	if len(e.live) > 0 {
		panic(fmt.Sprintf("sim: %d procs failed to terminate on Close: %s",
			len(e.live), strings.Join(e.liveNames(), ", ")))
	}
}

// killSignal is the panic value used to unwind killed procs.
type killSignal struct{}
