package sim_test

import (
	"fmt"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/sim"
	"asmp/internal/simtime"
)

// Example shows the engine's programming model: simulated threads are
// ordinary Go functions that compute, sleep and synchronize; the
// scheduler decides how long computes take on which core.
func Example() {
	env := sim.NewEnv(1)
	opt := sched.Defaults(sched.PolicyNaive)
	opt.RandomWakeups = false // deterministic placement for the example
	sched.New(env, cpu.NewMachine(1.0, 0.25), opt)
	defer env.Close()

	var mu sim.Mutex
	shared := 0

	for i := 0; i < 2; i++ {
		env.Go(fmt.Sprintf("worker-%d", i), func(p *sim.Proc) {
			p.Compute(0.5 * cpu.BaseHz) // half a second of work at full speed
			mu.Lock(p)
			shared++
			mu.Unlock(p)
			fmt.Printf("%s done at %v\n", p.Name(), p.Now())
		})
	}
	env.Run()
	fmt.Println("shared =", shared)
	// Output:
	// worker-0 done at 500.000ms
	// worker-1 done at 2.000s
	// shared = 2
}

// ExampleQueue shows the producer/consumer backbone every request-driven
// workload model is built on: kernel-context events inject work, procs
// serve it.
func ExampleQueue() {
	env := sim.NewEnv(1)
	opt := sched.Defaults(sched.PolicyNaive)
	opt.RandomWakeups = false
	sched.New(env, cpu.NewMachine(1.0), opt)
	defer env.Close()

	requests := sim.NewQueue[int](env)
	env.Go("server", func(p *sim.Proc) {
		for {
			req, ok := requests.Get(p)
			if !ok {
				return
			}
			p.Compute(0.1 * cpu.BaseHz)
			fmt.Printf("request %d served at %v\n", req, p.Now())
		}
	})
	// A load generator running as kernel events.
	for i := 0; i < 2; i++ {
		i := i
		env.At(simtime.Time(i)*0.5, func() { requests.Put(i) })
	}
	env.After(2, func() { requests.Close() })
	env.Run()
	// Output:
	// request 0 served at 100.000ms
	// request 1 served at 600.000ms
}

// ExampleBarrier shows the OpenMP-style synchronization the SPEC OMP
// model uses: all parties leave together, gated by the slowest.
func ExampleBarrier() {
	env := sim.NewEnv(1)
	opt := sched.Defaults(sched.PolicyNaive)
	opt.RandomWakeups = false
	sched.New(env, cpu.NewMachine(1.0, 0.5), opt)
	defer env.Close()

	b := sim.NewBarrier(2)
	for i := 0; i < 2; i++ {
		env.Go(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			p.Compute(0.5 * cpu.BaseHz)
			b.Wait(p) // the 1.0-speed thread waits for the 0.5-speed one
			fmt.Printf("%s past barrier at %v\n", p.Name(), p.Now())
		})
	}
	env.Run()
	// Output:
	// t1 past barrier at 1.000s
	// t0 past barrier at 1.000s
}
