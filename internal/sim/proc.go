package sim

import (
	"fmt"

	"asmp/internal/simtime"
	"asmp/internal/xrand"
)

// Proc is a simulated thread of execution. All methods except ID, Name,
// Affinity and SchedState must be called from within the proc's own body
// function; they yield control to the engine and block in simulated time.
type Proc struct {
	env  *Env
	id   int
	name string
	fn   func(*Proc)
	rand *xrand.Rand

	toProc   chan struct{}
	toKernel chan struct{}
	liveIdx  int  // position in the env's live table; -1 once retired
	launched bool // goroutine exists and first handoff is pending or done
	waiting  bool // parked in yield, waiting for resume
	killed   bool
	done     bool

	sleepEv   simtime.Ref
	affinity  CPUSet
	exitHooks []func()

	// SchedState is an opaque slot owned by the Executor for its per-proc
	// bookkeeping (run-queue links, placement history, ...).
	SchedState any
}

// main is one proc's turn on a pooled worker goroutine: wait for the
// first handoff, run the proc function, and report completion to the
// kernel even when the function panics (the recover below is what lets
// the worker survive and serve the next proc).
func (p *Proc) main() {
	<-p.toProc
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSignal); !ok {
				// A genuine bug in workload code: surface it in the
				// kernel so tests fail loudly instead of deadlocking.
				p.env.panicVal = fmt.Sprintf("sim: proc %q panicked: %v", p.name, r)
			}
		}
		p.done = true
		p.toKernel <- struct{}{}
	}()
	if !p.killed {
		p.fn(p)
	}
}

// FinishCompute is the Executor's completion callback: it resumes p at
// the simulated time an issued Compute finishes. Kernel context only,
// and never synchronously from within Executor.Compute — always from a
// scheduled event.
func (p *Proc) FinishCompute() { p.env.resume(p) }

// ID returns the proc's unique id (1-based, in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc %d (%s)", p.id, p.name) }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current simulated time.
func (p *Proc) Now() simtime.Time { return p.env.Now() }

// Rand returns this proc's private random stream.
func (p *Proc) Rand() *xrand.Rand { return p.rand }

// Affinity returns the proc's CPU affinity mask.
func (p *Proc) Affinity() CPUSet { return p.affinity }

// SetAffinity restricts the proc to the given cores. It takes effect on
// the next compute request; an in-flight burst is not migrated. Pass 0 to
// clear the restriction.
func (p *Proc) SetAffinity(s CPUSet) { p.affinity = s }

// Done reports whether the proc has exited.
func (p *Proc) Done() bool { return p.done }

// Killed reports whether the proc has been asked to terminate.
func (p *Proc) Killed() bool { return p.killed }

// OnExit registers fn to run (in kernel context) when the proc exits.
func (p *Proc) OnExit(fn func()) { p.exitHooks = append(p.exitHooks, fn) }

// yield parks the proc until the kernel resumes it. Must be called from
// the proc's own goroutine. Panics with killSignal if the proc was killed
// while parked.
func (p *Proc) yield() {
	p.waiting = true
	p.toKernel <- struct{}{}
	<-p.toProc
	if p.killed {
		panic(killSignal{})
	}
}

// checkContext panics if the method is invoked from outside the proc's
// active context, which would corrupt the engine's handoff discipline.
func (p *Proc) checkContext() {
	if p.env.running != p {
		panic(fmt.Sprintf("sim: %v operation invoked from outside its context", p))
	}
	if p.killed {
		panic(killSignal{})
	}
}

// Compute retires the given number of CPU cycles through the executor.
// How long that takes in simulated time depends on core speeds,
// contention and the scheduling policy.
func (p *Proc) Compute(cycles float64) {
	p.ComputeMem(cycles, 0)
}

// ComputeMem retires cycles of CPU work plus mem of memory-stall time.
// The stall occupies whichever core runs the burst for a fixed duration
// independent of the core's duty cycle, modelling work that waits on the
// (unmodulated) memory system.
func (p *Proc) ComputeMem(cycles float64, mem simtime.Duration) {
	p.checkContext()
	if cycles < 0 || mem < 0 {
		panic("sim: negative compute")
	}
	if cycles == 0 && mem == 0 {
		return
	}
	exec := p.env.exec
	if exec == nil {
		panic("sim: Compute with no executor installed")
	}
	exec.Compute(p, cycles, float64(mem))
	p.yield()
}

// Sleep suspends the proc for d of simulated time without consuming CPU.
// The timer is a typed event (kind evSleep), so sleeping allocates
// nothing; the handle is a generation-checked Ref, so Kill's
// cancellation path stays safe even if the timer already fired and the
// event was recycled.
func (p *Proc) Sleep(d simtime.Duration) {
	p.checkContext()
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.sleepEv = p.env.queue.AfterCall(d, p.env, evSleep, p)
	p.yield()
}

// SleepUntil suspends the proc until simulated time t (no-op if t has
// passed).
func (p *Proc) SleepUntil(t simtime.Time) {
	now := p.env.Now()
	if t <= now {
		return
	}
	p.Sleep(t - now)
}

// Exit terminates the proc immediately.
func (p *Proc) Exit() {
	p.checkContext()
	panic(killSignal{})
}

// block parks the proc after it has enqueued itself on some primitive's
// wait list. Used by the synchronization primitives in this package.
func (p *Proc) block() {
	p.yield()
}

// Block parks the proc until some other context calls Env.Wake on it.
// It is the extension point for building custom synchronization
// primitives outside this package (e.g. a garbage-collected heap that
// stalls allocators). The caller is responsible for keeping a reference
// to the proc and waking it exactly when its condition is satisfied.
func (p *Proc) Block() {
	p.checkContext()
	p.block()
}
