package sim

// Queue is an unbounded FIFO channel between simulated procs (and the
// kernel). Producers never block; consumers block until an item or until
// the queue closes. Load generators running as kernel events use Put to
// inject work into server procs, which is the backbone of every
// request-driven workload model in this repository.
// The backlog is a head-indexed slice, not a reslice-on-pop: popping with
// items = items[1:] would strand the dead prefix in the backing array for
// the queue's lifetime and force append to grow a fresh array every time
// the old one's capacity slid out of reach. Instead head advances past
// consumed slots (zeroed so they retain nothing) and the live suffix is
// periodically compacted back to the front, so a steady-state queue
// reaches a fixed-size backing array and stops allocating entirely.
type Queue[T any] struct {
	env      *Env
	items    []T
	head     int // items[:head] are consumed (zeroed); items[head:] are live
	getters  []*Proc
	closed   bool
	lifoWake bool
}

// NewQueue returns an empty open queue bound to e. Waiting consumers are
// woken FIFO (longest-waiting first).
func NewQueue[T any](e *Env) *Queue[T] { return &Queue[T]{env: e} }

// NewAcceptQueue returns a queue that wakes the most recently parked
// consumer first (LIFO). This models UNIX accept() semantics, where the
// most recently idle server process tends to win the race for the next
// connection — the reason a lightly loaded pre-fork server concentrates
// its work on a small, placement-persistent subset of workers.
func NewAcceptQueue[T any](e *Env) *Queue[T] { return &Queue[T]{env: e, lifoWake: true} }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Put enqueues v and wakes one waiting consumer. It may be called from
// any context and panics if the queue is closed.
func (q *Queue[T]) Put(v T) {
	if q.closed {
		panic("sim: Put on closed queue")
	}
	if q.items == nil {
		// Skip append's 1→2→4→8 growth steps: queues that see any
		// traffic at all almost always see more than a handful of items.
		q.items = make([]T, 0, 16)
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// Close marks the queue closed and wakes all waiting consumers, which
// observe ok == false once the backlog drains.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	gs := q.getters
	q.getters = nil
	for _, p := range gs {
		if !p.done {
			q.env.wake(p)
		}
	}
}

// Get dequeues the oldest item, blocking while the queue is empty. It
// returns ok == false only when the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	p.checkContext()
	for q.Len() == 0 {
		if q.closed {
			return v, false
		}
		q.getters = append(q.getters, p)
		p.block()
	}
	return q.pop(), true
}

// TryGet dequeues without blocking, reporting whether an item was
// available.
func (q *Queue[T]) TryGet(p *Proc) (v T, ok bool) {
	p.checkContext()
	if q.Len() == 0 {
		return v, false
	}
	return q.pop(), true
}

// pop removes and returns the oldest item. The consumed slot is zeroed
// immediately (so it retains nothing) and the dead prefix is reclaimed
// either by rewinding to an empty slice when the backlog drains, or by
// compacting the live suffix once the prefix reaches half the array —
// each element moves at most once per time the backlog halves, so popping
// stays amortized O(1).
func (q *Queue[T]) pop() T {
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head >= 64 && q.head*2 >= len(q.items):
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v
}

// wakeOne wakes one live consumer: the longest-waiting one by default,
// or the most recently parked one for accept queues.
func (q *Queue[T]) wakeOne() {
	for len(q.getters) > 0 {
		// Both pops zero the vacated slot so no *Proc outlives its wait,
		// and neither reslices the front away, so the array is reused.
		var p *Proc
		if q.lifoWake {
			last := len(q.getters) - 1
			p = q.getters[last]
			q.getters[last] = nil
			q.getters = q.getters[:last]
		} else {
			p = q.getters[0]
			n := copy(q.getters, q.getters[1:])
			q.getters[n] = nil
			q.getters = q.getters[:n]
		}
		if p.done {
			continue
		}
		q.env.wake(p)
		return
	}
}
