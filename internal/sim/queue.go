package sim

// Queue is an unbounded FIFO channel between simulated procs (and the
// kernel). Producers never block; consumers block until an item or until
// the queue closes. Load generators running as kernel events use Put to
// inject work into server procs, which is the backbone of every
// request-driven workload model in this repository.
type Queue[T any] struct {
	env      *Env
	items    []T
	getters  []*Proc
	closed   bool
	lifoWake bool
}

// NewQueue returns an empty open queue bound to e. Waiting consumers are
// woken FIFO (longest-waiting first).
func NewQueue[T any](e *Env) *Queue[T] { return &Queue[T]{env: e} }

// NewAcceptQueue returns a queue that wakes the most recently parked
// consumer first (LIFO). This models UNIX accept() semantics, where the
// most recently idle server process tends to win the race for the next
// connection — the reason a lightly loaded pre-fork server concentrates
// its work on a small, placement-persistent subset of workers.
func NewAcceptQueue[T any](e *Env) *Queue[T] { return &Queue[T]{env: e, lifoWake: true} }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Put enqueues v and wakes one waiting consumer. It may be called from
// any context and panics if the queue is closed.
func (q *Queue[T]) Put(v T) {
	if q.closed {
		panic("sim: Put on closed queue")
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// Close marks the queue closed and wakes all waiting consumers, which
// observe ok == false once the backlog drains.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	gs := q.getters
	q.getters = nil
	for _, p := range gs {
		if !p.done {
			q.env.wake(p)
		}
	}
}

// Get dequeues the oldest item, blocking while the queue is empty. It
// returns ok == false only when the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	p.checkContext()
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		q.getters = append(q.getters, p)
		p.block()
	}
	v = q.items[0]
	// Avoid retaining the element in the backing array.
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// TryGet dequeues without blocking, reporting whether an item was
// available.
func (q *Queue[T]) TryGet(p *Proc) (v T, ok bool) {
	p.checkContext()
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// wakeOne wakes one live consumer: the longest-waiting one by default,
// or the most recently parked one for accept queues.
func (q *Queue[T]) wakeOne() {
	for len(q.getters) > 0 {
		var p *Proc
		if q.lifoWake {
			p = q.getters[len(q.getters)-1]
			q.getters = q.getters[:len(q.getters)-1]
		} else {
			p = q.getters[0]
			q.getters = q.getters[1:]
		}
		if p.done {
			continue
		}
		q.env.wake(p)
		return
	}
}
