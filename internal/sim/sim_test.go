package sim

import (
	"fmt"
	"strings"
	"testing"

	"asmp/internal/simtime"
)

// unitExec is a trivial executor: every proc computes at rate 1 cycle per
// second with unlimited parallelism. It is enough to exercise the engine
// without the real scheduler.
type unitExec struct {
	env     *Env
	pending map[*Proc]*simtime.Event
}

func newUnitExec(env *Env) *unitExec {
	x := &unitExec{env: env, pending: map[*Proc]*simtime.Event{}}
	env.SetExecutor(x)
	return x
}

func (x *unitExec) Compute(p *Proc, cycles, memSeconds float64) {
	x.pending[p] = x.env.After(simtime.Duration(cycles+memSeconds), func() {
		delete(x.pending, p)
		p.FinishCompute()
	})
}

func (x *unitExec) Cancel(p *Proc) {
	if ev, ok := x.pending[p]; ok {
		x.env.CancelEvent(ev)
		delete(x.pending, p)
	}
}

func (x *unitExec) ProcExit(*Proc) {}

func newTestEnv(t *testing.T, seed uint64) *Env {
	t.Helper()
	e := NewEnv(seed)
	newUnitExec(e)
	t.Cleanup(e.Close)
	return e
}

func TestComputeAdvancesTime(t *testing.T) {
	e := newTestEnv(t, 1)
	var finished simtime.Time
	e.Go("w", func(p *Proc) {
		p.Compute(5)
		finished = p.Now()
	})
	e.Run()
	if finished != 5 {
		t.Fatalf("compute(5) finished at %v, want 5", finished)
	}
}

func TestComputeZeroIsFree(t *testing.T) {
	e := newTestEnv(t, 1)
	e.Go("w", func(p *Proc) {
		p.Compute(0)
		if p.Now() != 0 {
			t.Errorf("Compute(0) advanced time to %v", p.Now())
		}
	})
	e.Run()
}

func TestSleep(t *testing.T) {
	e := newTestEnv(t, 1)
	var at simtime.Time
	e.Go("s", func(p *Proc) {
		p.Sleep(3)
		p.Sleep(4)
		at = p.Now()
	})
	e.Run()
	if at != 7 {
		t.Fatalf("two sleeps ended at %v, want 7", at)
	}
}

func TestSleepUntil(t *testing.T) {
	e := newTestEnv(t, 1)
	var at simtime.Time
	e.Go("s", func(p *Proc) {
		p.SleepUntil(9)
		p.SleepUntil(2) // in the past: no-op
		at = p.Now()
	})
	e.Run()
	if at != 9 {
		t.Fatalf("SleepUntil ended at %v, want 9", at)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func(seed uint64) string {
		e := NewEnv(seed)
		newUnitExec(e)
		defer e.Close()
		var log []string
		for i := 0; i < 3; i++ {
			i := i
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Compute(float64(1 + i))
					log = append(log, fmt.Sprintf("%d@%v", i, p.Now()))
				}
			})
		}
		e.Run()
		return strings.Join(log, " ")
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different traces:\n%s\n%s", a, b)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	e := newTestEnv(t, 1)
	var mu Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		e.Go("locker", func(p *Proc) {
			for j := 0; j < 5; j++ {
				mu.Lock(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Compute(1)
				inside--
				mu.Unlock(p)
				p.Compute(0.5)
			}
		})
	}
	e.Run()
	if maxInside != 1 {
		t.Fatalf("mutex admitted %d procs at once", maxInside)
	}
	if mu.Locked() {
		t.Fatal("mutex left locked")
	}
}

func TestMutexFIFO(t *testing.T) {
	e := newTestEnv(t, 1)
	var mu Mutex
	var order []int
	e.Go("holder", func(p *Proc) {
		mu.Lock(p)
		p.Compute(10)
		mu.Unlock(p)
	})
	for i := 0; i < 3; i++ {
		i := i
		e.Go("waiter", func(p *Proc) {
			p.Sleep(simtime.Duration(i + 1)) // stagger arrival: 1, 2, 3
			mu.Lock(p)
			order = append(order, i)
			mu.Unlock(p)
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("unlock order %v, want [0 1 2]", order)
	}
}

func TestMutexTryLock(t *testing.T) {
	e := newTestEnv(t, 1)
	var mu Mutex
	e.Go("a", func(p *Proc) {
		if !mu.TryLock(p) {
			t.Error("TryLock on free mutex failed")
		}
		p.Compute(5)
		mu.Unlock(p)
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(1)
		if mu.TryLock(p) {
			t.Error("TryLock on held mutex succeeded")
		}
		p.Sleep(10)
		if !mu.TryLock(p) {
			t.Error("TryLock after release failed")
		}
		mu.Unlock(p)
	})
	e.Run()
}

func TestMutexErrors(t *testing.T) {
	e := newTestEnv(t, 1)
	var mu Mutex
	e.Go("a", func(p *Proc) {
		mu.Lock(p)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("recursive lock did not panic")
				}
			}()
			mu.Lock(p)
		}()
		mu.Unlock(p)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unlock of unheld mutex did not panic")
				}
			}()
			mu.Unlock(p)
		}()
	})
	e.Run()
}

func TestCondSignalBroadcast(t *testing.T) {
	e := newTestEnv(t, 1)
	var mu Mutex
	cond := NewCond(&mu)
	ready := 0
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			mu.Lock(p)
			ready++
			for ready < 100 { // predicate never true; released by broadcast below
				cond.Wait(p)
				woken++
				if woken >= 3 {
					break
				}
			}
			mu.Unlock(p)
		})
	}
	e.Go("kicker", func(p *Proc) {
		p.Sleep(1)
		cond.Broadcast(p.Env())
	})
	e.Run()
	if woken != 3 {
		t.Fatalf("broadcast woke %d, want 3", woken)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := newTestEnv(t, 1)
	var mu Mutex
	cond := NewCond(&mu)
	items := 0
	var got []int
	for i := 0; i < 2; i++ {
		i := i
		e.Go("consumer", func(p *Proc) {
			mu.Lock(p)
			for items == 0 {
				cond.Wait(p)
			}
			items--
			got = append(got, i)
			mu.Unlock(p)
		})
	}
	e.Go("producer", func(p *Proc) {
		p.Sleep(1)
		mu.Lock(p)
		items++
		cond.Signal(p.Env())
		mu.Unlock(p)
		p.Sleep(1)
		mu.Lock(p)
		items++
		cond.Signal(p.Env())
		mu.Unlock(p)
	})
	e.Run()
	if len(got) != 2 {
		t.Fatalf("consumed %d items, want 2", len(got))
	}
}

func TestCondWaitRequiresLock(t *testing.T) {
	e := newTestEnv(t, 1)
	var mu Mutex
	cond := NewCond(&mu)
	e.Go("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Wait without lock did not panic")
			}
			panic(killSignal{}) // unwind cleanly
		}()
		cond.Wait(p)
	})
	e.Run()
}

func TestBarrierRounds(t *testing.T) {
	e := newTestEnv(t, 1)
	b := NewBarrier(3)
	var trace []string
	for i := 0; i < 3; i++ {
		i := i
		e.Go("party", func(p *Proc) {
			for round := 0; round < 2; round++ {
				p.Compute(float64(i + 1)) // unequal work
				b.Wait(p)
				trace = append(trace, fmt.Sprintf("r%d:p%d@%v", round, i, p.Now()))
			}
		})
	}
	e.Run()
	if b.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", b.Rounds())
	}
	// All parties leave round 0 at t=3 (slowest) and round 1 at t=6.
	for _, s := range trace {
		if strings.HasPrefix(s, "r0:") && !strings.HasSuffix(s, "@3.000s") {
			t.Fatalf("round 0 release at wrong time: %v", trace)
		}
		if strings.HasPrefix(s, "r1:") && !strings.HasSuffix(s, "@6.000s") {
			t.Fatalf("round 1 release at wrong time: %v", trace)
		}
	}
}

func TestBarrierValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestWaitGroup(t *testing.T) {
	e := newTestEnv(t, 1)
	wg := NewWaitGroup(e)
	wg.Add(3)
	var doneAt simtime.Time
	for i := 0; i < 3; i++ {
		i := i
		e.Go("worker", func(p *Proc) {
			p.Compute(float64(i + 1))
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 3 {
		t.Fatalf("WaitGroup released at %v, want 3", doneAt)
	}
	if wg.Count() != 0 {
		t.Fatalf("count = %d", wg.Count())
	}
}

func TestWaitGroupImmediate(t *testing.T) {
	e := newTestEnv(t, 1)
	wg := NewWaitGroup(e)
	passed := false
	e.Go("w", func(p *Proc) {
		wg.Wait(p) // zero counter: no block
		passed = true
	})
	e.Run()
	if !passed {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	e := newTestEnv(t, 1)
	wg := NewWaitGroup(e)
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter did not panic")
		}
	}()
	wg.Add(-1)
}

func TestSemaphore(t *testing.T) {
	e := newTestEnv(t, 1)
	sem := NewSemaphore(2)
	inside, maxInside := 0, 0
	for i := 0; i < 5; i++ {
		e.Go("user", func(p *Proc) {
			sem.Acquire(p, 1)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Compute(1)
			inside--
			sem.Release(p.Env(), 1)
		})
	}
	e.Run()
	if maxInside != 2 {
		t.Fatalf("semaphore admitted %d, want 2", maxInside)
	}
	if sem.Permits() != 2 {
		t.Fatalf("permits = %d, want 2", sem.Permits())
	}
}

func TestSemaphoreFIFOBigRequest(t *testing.T) {
	e := newTestEnv(t, 1)
	sem := NewSemaphore(2)
	var order []string
	e.Go("holder", func(p *Proc) {
		sem.Acquire(p, 2)
		p.Compute(10)
		sem.Release(p.Env(), 2)
	})
	e.Go("big", func(p *Proc) {
		p.Sleep(1)
		sem.Acquire(p, 2)
		order = append(order, "big")
		sem.Release(p.Env(), 2)
	})
	e.Go("small", func(p *Proc) {
		p.Sleep(2)
		sem.Acquire(p, 1)
		order = append(order, "small")
		sem.Release(p.Env(), 1)
	})
	e.Run()
	if len(order) != 2 || order[0] != "big" {
		t.Fatalf("grant order %v; FIFO must serve the earlier big request first", order)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := newTestEnv(t, 1)
	sem := NewSemaphore(1)
	e.Go("w", func(p *Proc) {
		if !sem.TryAcquire(p, 1) {
			t.Error("TryAcquire on free semaphore failed")
		}
		if sem.TryAcquire(p, 1) {
			t.Error("TryAcquire on empty semaphore succeeded")
		}
		sem.Release(p.Env(), 1)
	})
	e.Run()
}

func TestQueuePutGet(t *testing.T) {
	e := newTestEnv(t, 1)
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			q.Put(i)
		}
		q.Close()
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestQueueKernelPut(t *testing.T) {
	e := newTestEnv(t, 1)
	q := NewQueue[string](e)
	var got string
	e.Go("consumer", func(p *Proc) {
		v, ok := q.Get(p)
		if ok {
			got = v
		}
	})
	e.After(5, func() { q.Put("from-kernel") })
	e.Run()
	if got != "from-kernel" {
		t.Fatalf("got %q", got)
	}
}

func TestQueueTryGet(t *testing.T) {
	e := newTestEnv(t, 1)
	q := NewQueue[int](e)
	e.Go("c", func(p *Proc) {
		if _, ok := q.TryGet(p); ok {
			t.Error("TryGet on empty queue succeeded")
		}
		q.Put(1)
		if v, ok := q.TryGet(p); !ok || v != 1 {
			t.Error("TryGet on non-empty queue failed")
		}
	})
	e.Run()
}

func TestQueueCloseUnblocksAll(t *testing.T) {
	e := newTestEnv(t, 1)
	q := NewQueue[int](e)
	unblocked := 0
	for i := 0; i < 3; i++ {
		e.Go("c", func(p *Proc) {
			_, ok := q.Get(p)
			if !ok {
				unblocked++
			}
		})
	}
	e.After(1, func() { q.Close() })
	e.Run()
	if unblocked != 3 {
		t.Fatalf("unblocked %d, want 3", unblocked)
	}
	if !q.Closed() {
		t.Fatal("queue not closed")
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	e := newTestEnv(t, 1)
	q := NewQueue[int](e)
	served := map[int]int{}
	for i := 0; i < 2; i++ {
		i := i
		e.Go("c", func(p *Proc) {
			for {
				_, ok := q.Get(p)
				if !ok {
					return
				}
				served[i]++
				p.Compute(1)
			}
		})
	}
	e.After(0.1, func() {
		for j := 0; j < 10; j++ {
			q.Put(j)
		}
		q.Close()
	})
	e.Run()
	if served[0]+served[1] != 10 {
		t.Fatalf("served %v, want 10 total", served)
	}
	if served[0] == 0 || served[1] == 0 {
		t.Fatalf("work not shared: %v", served)
	}
}

func TestKillSleepingProc(t *testing.T) {
	e := newTestEnv(t, 1)
	reached := false
	p := e.Go("sleeper", func(p *Proc) {
		p.Sleep(1000)
		reached = true
	})
	e.After(1, func() { e.Kill(p) })
	e.Run()
	if reached {
		t.Fatal("killed proc continued past Sleep")
	}
	if !p.Done() {
		t.Fatal("killed proc not done")
	}
	if e.NumLive() != 0 {
		t.Fatalf("live procs = %d", e.NumLive())
	}
}

func TestKillComputingProc(t *testing.T) {
	e := newTestEnv(t, 1)
	reached := false
	p := e.Go("cruncher", func(p *Proc) {
		p.Compute(1000)
		reached = true
	})
	e.After(1, func() { e.Kill(p) })
	e.Run()
	if reached || !p.Done() {
		t.Fatal("kill during compute failed")
	}
}

func TestKillBlockedOnMutex(t *testing.T) {
	e := newTestEnv(t, 1)
	var mu Mutex
	reached := false
	e.Go("holder", func(p *Proc) {
		mu.Lock(p)
		p.Compute(100)
		mu.Unlock(p)
	})
	victim := e.Go("victim", func(p *Proc) {
		p.Sleep(1)
		mu.Lock(p)
		reached = true
		mu.Unlock(p)
	})
	e.After(2, func() { e.Kill(victim) })
	e.Run()
	if reached {
		t.Fatal("killed proc acquired the mutex")
	}
	if mu.Locked() {
		t.Fatal("mutex leaked after dead waiter was skipped")
	}
}

func TestExit(t *testing.T) {
	e := newTestEnv(t, 1)
	after := false
	e.Go("quitter", func(p *Proc) {
		p.Compute(1)
		p.Exit()
		after = true
	})
	e.Run()
	if after {
		t.Fatal("code ran after Exit")
	}
}

func TestOnExit(t *testing.T) {
	e := newTestEnv(t, 1)
	hooked := false
	p := e.Go("w", func(p *Proc) { p.Compute(1) })
	p.OnExit(func() { hooked = true })
	e.Run()
	if !hooked {
		t.Fatal("OnExit hook did not run")
	}
}

func TestCloseReapsEverything(t *testing.T) {
	e := NewEnv(1)
	newUnitExec(e)
	var mu Mutex
	e.Go("holder", func(p *Proc) {
		mu.Lock(p)
		p.Sleep(simtime.Never) // parked forever
	})
	for i := 0; i < 5; i++ {
		e.Go("waiter", func(p *Proc) {
			p.Compute(1)
			mu.Lock(p)
			mu.Unlock(p)
		})
	}
	e.RunUntil(10)
	if e.NumLive() == 0 {
		t.Fatal("expected live procs before Close")
	}
	e.Close()
	if e.NumLive() != 0 {
		t.Fatalf("live after Close: %d", e.NumLive())
	}
}

func TestProcPanicsPropagate(t *testing.T) {
	e := NewEnv(1)
	newUnitExec(e)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("workload panic did not propagate to Run")
		} else if !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("unexpected panic %v", r)
		}
		e.Close()
	}()
	e.Go("bad", func(p *Proc) {
		p.Compute(1)
		panic("boom")
	})
	e.Run()
}

func TestContextEnforcement(t *testing.T) {
	e := newTestEnv(t, 1)
	var stray *Proc
	e.Go("a", func(p *Proc) {
		stray = p
		p.Compute(5)
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(1)
		defer func() {
			if recover() == nil {
				t.Error("cross-context op did not panic")
			}
		}()
		stray.Compute(1) // b driving a's proc: must panic
	})
	func() {
		defer func() { recover() }() // the misuse also poisons the run; swallow
		e.Run()
	}()
}

func TestCPUSet(t *testing.T) {
	var s CPUSet
	if !s.Has(0) || !s.Has(63) {
		t.Fatal("empty set must contain every core")
	}
	s = s.Set(2).Set(5)
	if !s.Has(2) || !s.Has(5) || s.Has(3) {
		t.Fatal("set/has broken")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
	if !Single(7).Has(7) || Single(7).Has(6) {
		t.Fatal("Single broken")
	}
}

func TestRandPerProcIndependence(t *testing.T) {
	e := newTestEnv(t, 1)
	vals := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		e.Go("r", func(p *Proc) {
			vals[p.Rand().Uint64()] = true
		})
	}
	e.Run()
	if len(vals) != 4 {
		t.Fatalf("per-proc rand streams collided: %d unique", len(vals))
	}
}

func TestGoAfterClosePanics(t *testing.T) {
	e := NewEnv(1)
	newUnitExec(e)
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Go on closed env did not panic")
		}
	}()
	e.Go("late", func(p *Proc) {})
}
