package sim

import (
	"fmt"
	"testing"

	"asmp/internal/simtime"
	"asmp/internal/xrand"
)

// TestPrimitiveChaos exercises every synchronization primitive under a
// randomized mixture of procs with mid-run kills, then verifies that
// teardown reaps everything. Kills are documented as best-effort
// teardown (they may strand a primitive a dead proc held), so the
// assertions here are about robustness — no panic, no leak — not about
// the primitives' liveness after a kill.
func TestPrimitiveChaos(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := xrand.New(seed ^ 0xc0ffee)
			env := NewEnv(seed)
			newUnitExec(env)

			var mu Mutex
			cond := NewCond(&mu)
			sem := NewSemaphore(2)
			queue := NewQueue[int](env)
			wg := NewWaitGroup(env)
			produced := 0
			consumed := 0

			nprocs := 4 + rng.Intn(12)
			var killable []*Proc
			for i := 0; i < nprocs; i++ {
				role := rng.Intn(4)
				p := env.Go(fmt.Sprintf("chaos-%d-%d", role, i), func(p *Proc) {
					switch role {
					case 0: // lock-heavy worker
						for j := 0; j < 20; j++ {
							mu.Lock(p)
							p.Compute(p.Rand().Range(0.1, 2))
							mu.Unlock(p)
							p.Sleep(simtime.Duration(p.Rand().Range(0.1, 1)))
						}
					case 1: // producer
						for j := 0; j < 15; j++ {
							p.Compute(1)
							if queue.Closed() {
								return
							}
							queue.Put(j)
							produced++
							sem.Release(p.Env(), 1)
							sem.Acquire(p, 1)
						}
					case 2: // consumer
						for {
							v, ok := queue.Get(p)
							if !ok {
								return
							}
							_ = v
							consumed++
							p.Compute(0.5)
						}
					case 3: // cond waiter/signaller
						for j := 0; j < 10; j++ {
							mu.Lock(p)
							if p.Rand().Bool(0.5) {
								cond.Signal(p.Env())
							} else {
								cond.Broadcast(p.Env())
							}
							mu.Unlock(p)
							p.Sleep(simtime.Duration(p.Rand().Range(0.1, 0.5)))
						}
					}
				})
				if rng.Bool(0.25) {
					killable = append(killable, p)
				}
			}
			wg.Add(1) // never released: a permanently-parked waiter
			env.Go("parked", func(p *Proc) { wg.Wait(p) })
			for _, v := range killable {
				v := v
				env.After(simtime.Duration(rng.Range(1, 20)), func() { env.Kill(v) })
			}
			env.After(simtime.Duration(rng.Range(5, 30)), func() { queue.Close() })

			env.RunUntil(500)
			if consumed > produced {
				t.Fatalf("consumed %d > produced %d", consumed, produced)
			}
			env.Close()
			if env.NumLive() != 0 {
				t.Fatalf("%d procs leaked through Close", env.NumLive())
			}
		})
	}
}

// TestDeterministicChaos re-runs one chaotic soup twice and requires an
// identical event count and final clock — the engine's determinism
// guarantee under its full feature surface.
func TestDeterministicChaos(t *testing.T) {
	run := func() (int, simtime.Time) {
		env := NewEnv(7)
		newUnitExec(env)
		var mu Mutex
		b := NewBarrier(3)
		for i := 0; i < 3; i++ {
			env.Go("p", func(p *Proc) {
				for j := 0; j < 30; j++ {
					p.Compute(p.Rand().Range(0.5, 2))
					mu.Lock(p)
					p.Compute(0.1)
					mu.Unlock(p)
					b.Wait(p)
				}
			})
		}
		n := env.Run()
		now := env.Now()
		env.Close()
		return n, now
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Fatalf("chaos not deterministic: (%d, %v) vs (%d, %v)", n1, t1, n2, t2)
	}
}
