package sim

// This file provides the synchronization primitives simulated threads
// use: Mutex, Cond, Barrier, WaitGroup and Semaphore. All of them follow
// the engine's conventions:
//
//   - Blocking methods take the calling proc explicitly and must be
//     invoked from that proc's own context.
//   - Wakeups are FIFO and deterministic.
//   - Procs killed while parked on a primitive unwind immediately; their
//     stale wait-list entries are skipped when the primitive next hands
//     out a wakeup. A killed proc that *owned* a mutex leaves it held —
//     Kill is a teardown mechanism, not a cancellation mechanism.

// Mutex is a FIFO mutual-exclusion lock between simulated procs. The zero
// value is an unlocked mutex.
type Mutex struct {
	owner   *Proc
	waiters []*Proc
}

// Lock acquires m, blocking in simulated time while another proc holds it.
func (m *Mutex) Lock(p *Proc) {
	p.checkContext()
	if m.owner == nil {
		m.owner = p
		return
	}
	if m.owner == p {
		panic("sim: recursive Mutex.Lock")
	}
	m.waiters = append(m.waiters, p)
	p.block()
}

// TryLock acquires m if it is free, reporting whether it did.
func (m *Mutex) TryLock(p *Proc) bool {
	p.checkContext()
	if m.owner == nil {
		m.owner = p
		return true
	}
	return false
}

// Unlock releases m, handing ownership to the longest-waiting live proc.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("sim: Unlock of mutex not held by caller")
	}
	for len(m.waiters) > 0 {
		next := m.waiters[0]
		m.waiters = m.waiters[1:]
		if next.done {
			continue
		}
		m.owner = next
		p.env.wake(next)
		return
	}
	m.owner = nil
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Cond is a condition variable tied to a Mutex, mirroring sync.Cond.
type Cond struct {
	L       *Mutex
	waiters []*Proc
}

// NewCond returns a condition variable using l for its critical section.
func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

// Wait atomically releases c.L, parks the proc until a Signal or
// Broadcast, then reacquires c.L before returning. As with sync.Cond,
// callers must re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	p.checkContext()
	if c.L.owner != p {
		panic("sim: Cond.Wait without holding the lock")
	}
	c.waiters = append(c.waiters, p)
	c.L.Unlock(p)
	p.block()
	c.L.Lock(p)
}

// Signal wakes the longest-waiting live proc, if any. It may be called
// from any context (a proc or the kernel).
func (c *Cond) Signal(e *Env) {
	for len(c.waiters) > 0 {
		next := c.waiters[0]
		c.waiters = c.waiters[1:]
		if next.done {
			continue
		}
		e.wake(next)
		return
	}
}

// Broadcast wakes all parked procs.
func (c *Cond) Broadcast(e *Env) {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		if !w.done {
			e.wake(w)
		}
	}
}

// NumWaiters returns the number of parked procs (including any that have
// since been killed).
func (c *Cond) NumWaiters() int { return len(c.waiters) }

// Barrier synchronizes a fixed party of procs: each Wait blocks until all
// parties have arrived, then every proc proceeds and the barrier resets
// for the next round. This models the implicit barrier at the end of an
// OpenMP work-sharing region.
type Barrier struct {
	parties int
	arrived int
	waiters []*Proc
	rounds  int
}

// NewBarrier returns a barrier for the given number of parties.
func NewBarrier(parties int) *Barrier {
	if parties <= 0 {
		panic("sim: barrier needs at least one party")
	}
	return &Barrier{parties: parties}
}

// Parties returns the barrier's party count.
func (b *Barrier) Parties() int { return b.parties }

// Rounds returns how many times the barrier has tripped.
func (b *Barrier) Rounds() int { return b.rounds }

// Wait blocks until all parties have called Wait for the current round.
// The last arriving proc does not block.
func (b *Barrier) Wait(p *Proc) {
	p.checkContext()
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.rounds++
		ws := b.waiters
		b.waiters = nil
		for _, w := range ws {
			if !w.done {
				p.env.wake(w)
			}
		}
		return
	}
	b.waiters = append(b.waiters, p)
	p.block()
}

// WaitGroup counts outstanding work, like sync.WaitGroup. Add and Done
// may be called from any context; Wait must be called from a proc.
type WaitGroup struct {
	count   int
	waiters []*Proc
	env     *Env
}

// NewWaitGroup returns a wait group bound to e (needed so Done can issue
// wakeups from kernel context).
func NewWaitGroup(e *Env) *WaitGroup { return &WaitGroup{env: e} }

// Add adjusts the counter by delta. It panics if the counter goes
// negative.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 {
		ws := w.waiters
		w.waiters = nil
		for _, p := range ws {
			if !p.done {
				w.env.wake(p)
			}
		}
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Count returns the current counter value.
func (w *WaitGroup) Count() int { return w.count }

// Wait blocks the proc until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	p.checkContext()
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.block()
}

// Semaphore is a counting semaphore with FIFO granting.
type Semaphore struct {
	permits int
	waiters []semWaiter
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with the given initial permits.
func NewSemaphore(permits int) *Semaphore {
	if permits < 0 {
		panic("sim: negative semaphore permits")
	}
	return &Semaphore{permits: permits}
}

// Permits returns the currently available permits.
func (s *Semaphore) Permits() int { return s.permits }

// Acquire takes n permits, blocking until they are available. Grants are
// strictly FIFO: a large request blocks later small ones, preventing
// starvation.
func (s *Semaphore) Acquire(p *Proc, n int) {
	p.checkContext()
	if n <= 0 {
		panic("sim: non-positive semaphore acquire")
	}
	if len(s.waiters) == 0 && s.permits >= n {
		s.permits -= n
		return
	}
	s.waiters = append(s.waiters, semWaiter{p, n})
	p.block()
}

// TryAcquire takes n permits if immediately available.
func (s *Semaphore) TryAcquire(p *Proc, n int) bool {
	p.checkContext()
	if len(s.waiters) == 0 && s.permits >= n {
		s.permits -= n
		return true
	}
	return false
}

// Release returns n permits and wakes any waiters that can now be
// satisfied, in FIFO order. It may be called from any context.
func (s *Semaphore) Release(e *Env, n int) {
	if n <= 0 {
		panic("sim: non-positive semaphore release")
	}
	s.permits += n
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if w.p.done {
			s.waiters = s.waiters[1:]
			continue
		}
		if s.permits < w.n {
			return
		}
		s.permits -= w.n
		s.waiters = s.waiters[1:]
		e.wake(w.p)
	}
}
