package sim

// This file implements the engine's run guards ("watchdogs"). A
// simulation is a pure function of its inputs, which means a buggy
// workload model wedges deterministically too: an event loop that never
// quiesces, a runaway spawn storm, or a deadlock that empties the event
// heap while procs are still parked on synchronization primitives.
// Limits turn each of those failure modes into a structured error the
// experiment framework can record, instead of a hung or crashed sweep.
//
// Two consumption styles are supported:
//
//   - RunGuarded returns the structured error directly, for callers that
//     drive the environment themselves.
//   - SetLimits arms the guards on the ordinary Run/RunUntil entry
//     points, which PANIC with the structured error when a guard trips.
//     Workload models drive the environment from deep inside their Run
//     methods and have no error channel to the framework; the panic
//     unwinds through them and is recovered by core.ExecuteSafe, which
//     converts it into a per-run error. A tripped environment stays
//     tripped: every later Run/RunUntil fails immediately, so even a
//     workload that loops around its drive calls cannot hang.

import (
	"fmt"
	"sort"
	"strings"

	"asmp/internal/simtime"
)

// Limits bounds a run. The zero value imposes no limits.
type Limits struct {
	// MaxVirtualTime aborts the run before dispatching any event
	// scheduled after this virtual time (0 = unlimited).
	MaxVirtualTime simtime.Time
	// MaxEvents aborts the run after this many dispatched events
	// (0 = unlimited).
	MaxEvents int
	// DetectDeadlock reports an error when a RunUntil quiesces before
	// its deadline with live procs still blocked — the signature of a
	// workload deadlock (every proc parked, nothing left to wake them).
	// It applies only to RunUntil: a full Run legitimately drains the
	// heap while server procs idle, and Run-style workloads verify their
	// own completion instead.
	DetectDeadlock bool
}

// Zero reports whether the limits impose no bounds.
func (l Limits) Zero() bool { return l == Limits{} }

// Guard limit identifiers, used in WatchdogError.Limit.
const (
	LimitVirtualTime = "virtual-time"
	LimitEvents      = "events"
)

// WatchdogError reports that a run exceeded one of its Limits.
type WatchdogError struct {
	// Limit identifies the exhausted guard (LimitVirtualTime or
	// LimitEvents).
	Limit string
	// At is the virtual time the run had reached when the guard tripped.
	At simtime.Time
	// Events is the number of events dispatched up to that point.
	Events int
}

// Error implements error.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog: %s limit exceeded at %v after %d events", e.Limit, e.At, e.Events)
}

// DeadlockError reports an event heap that emptied while procs were
// still blocked, before the drive deadline.
type DeadlockError struct {
	// At is the virtual time of the quiesce.
	At simtime.Time
	// Blocked names the procs that were still parked, in spawn order.
	Blocked []string
}

// Error implements error.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: event heap empty with %d procs blocked: %s",
		e.At, len(e.Blocked), strings.Join(e.Blocked, ", "))
}

// SetLimits arms the run guards on this environment. Pass the zero
// Limits to disarm. See the file comment for the panic contract on
// Run/RunUntil when a guard trips.
func (e *Env) SetLimits(l Limits) { e.limits = l }

// Limits returns the armed run guards.
func (e *Env) Limits() Limits { return e.limits }

// Err returns the structured error the environment tripped on, or nil.
// Once non-nil it never resets; Close still works for teardown.
func (e *Env) Err() error { return e.tripped }

// Events returns the total number of events dispatched so far.
func (e *Env) Events() int { return e.events }

// RunGuarded dispatches events up to the deadline (use simtime.Never to
// drain) under the armed Limits and returns the count plus a structured
// *WatchdogError or *DeadlockError when a guard trips. Unlike Run and
// RunUntil it never panics on a tripped guard.
func (e *Env) RunGuarded(deadline simtime.Time) (int, error) {
	return e.drive(deadline)
}

// drive is the guarded dispatch loop behind Run, RunUntil and
// RunGuarded.
func (e *Env) drive(deadline simtime.Time) (int, error) {
	if e.tripped != nil {
		// A poisoned environment refuses to continue, so callers that
		// loop around their drive calls terminate too.
		return 0, e.tripped
	}
	n := 0
	for {
		if e.cancelled() {
			e.tripped = &CancelledError{At: e.queue.Now(), Events: e.events}
			return n, e.tripped
		}
		next := e.queue.PeekTime()
		if next == simtime.Never || next > deadline {
			break
		}
		if l := e.limits.MaxVirtualTime; l > 0 && next > l {
			e.tripped = &WatchdogError{Limit: LimitVirtualTime, At: e.queue.Now(), Events: e.events}
			return n, e.tripped
		}
		if l := e.limits.MaxEvents; l > 0 && e.events >= l {
			e.tripped = &WatchdogError{Limit: LimitEvents, At: e.queue.Now(), Events: e.events}
			return n, e.tripped
		}
		e.queue.Step()
		n++
		e.events++
	}
	if e.limits.DetectDeadlock && deadline != simtime.Never &&
		e.queue.Len() == 0 && len(e.live) > 0 && e.queue.Now() < deadline {
		e.tripped = &DeadlockError{At: e.queue.Now(), Blocked: e.liveNames()}
		return n, e.tripped
	}
	e.queue.AdvanceTo(deadline)
	return n, nil
}

// liveNames returns "name#pid" for every live proc, in spawn order,
// capped for readability.
func (e *Env) liveNames() []string {
	procs := make([]*Proc, len(e.live))
	copy(procs, e.live)
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	const cap = 16
	out := make([]string, 0, len(procs))
	for i, p := range procs {
		if i == cap {
			out = append(out, fmt.Sprintf("… %d more", len(procs)-cap))
			break
		}
		out = append(out, fmt.Sprintf("%s#%d", p.name, p.id))
	}
	return out
}
