package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"asmp/internal/simtime"
)

func TestWatchdogMaxVirtualTime(t *testing.T) {
	e := newTestEnv(t, 1)
	defer e.Close()
	e.SetLimits(Limits{MaxVirtualTime: 5 * simtime.Second})
	e.Go("spinner", func(p *Proc) {
		for {
			p.Sleep(simtime.Second)
		}
	})
	_, err := e.RunGuarded(simtime.Never)
	var werr *WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("err = %v, want *WatchdogError", err)
	}
	if werr.Limit != LimitVirtualTime {
		t.Fatalf("limit = %q, want %q", werr.Limit, LimitVirtualTime)
	}
	if now := e.Now(); now > 5*simtime.Second {
		t.Fatalf("clock ran past the guard: %v", now)
	}
	if e.Err() == nil {
		t.Fatal("tripped error not sticky")
	}
}

func TestWatchdogMaxEvents(t *testing.T) {
	e := newTestEnv(t, 1)
	defer e.Close()
	e.SetLimits(Limits{MaxEvents: 100})
	e.Go("spinner", func(p *Proc) {
		for {
			p.Compute(1)
		}
	})
	_, err := e.RunGuarded(simtime.Never)
	var werr *WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("err = %v, want *WatchdogError", err)
	}
	if werr.Limit != LimitEvents {
		t.Fatalf("limit = %q, want %q", werr.Limit, LimitEvents)
	}
	if e.Events() < 100 {
		t.Fatalf("events = %d, want >= 100", e.Events())
	}
}

// TestWatchdogPanicsOnRun verifies the documented panic contract of the
// plain Run/RunUntil entry points, which workload models use internally.
func TestWatchdogPanicsOnRun(t *testing.T) {
	e := newTestEnv(t, 1)
	defer e.Close()
	e.SetLimits(Limits{MaxEvents: 10})
	e.Go("spinner", func(p *Proc) {
		for {
			p.Compute(1)
		}
	})
	func() {
		defer func() {
			r := recover()
			if _, ok := r.(*WatchdogError); !ok {
				t.Fatalf("recover = %v, want *WatchdogError", r)
			}
		}()
		e.Run()
	}()
	// A tripped environment must fail immediately and forever, so
	// workloads that loop around their drive calls terminate too.
	for i := 0; i < 3; i++ {
		n, err := e.RunGuarded(simtime.Never)
		if n != 0 || err == nil {
			t.Fatalf("poisoned env dispatched %d events, err=%v", n, err)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := newTestEnv(t, 1)
	defer e.Close()
	e.SetLimits(Limits{DetectDeadlock: true})
	// Two procs each waiting on a barrier sized for three: a genuine
	// deadlock that empties the event heap with procs still blocked.
	b := NewBarrier(3)
	for i := 0; i < 2; i++ {
		e.Go(fmt.Sprintf("party-%d", i), func(p *Proc) {
			p.Compute(1)
			b.Wait(p)
		})
	}
	_, err := e.RunGuarded(10 * simtime.Second)
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if len(derr.Blocked) != 2 {
		t.Fatalf("blocked = %v, want both parties", derr.Blocked)
	}
	if !strings.Contains(derr.Error(), "party-0#1") {
		t.Fatalf("error %q does not name the blocked procs", derr.Error())
	}
}

// TestDeadlockDetectionNoFalsePositive: a run that reaches its deadline
// with procs blocked (an ordinary server run) is not a deadlock, and
// neither is a full Run drain.
func TestDeadlockDetectionNoFalsePositive(t *testing.T) {
	e := newTestEnv(t, 1)
	defer e.Close()
	e.SetLimits(Limits{DetectDeadlock: true})
	var mu Mutex
	e.Go("server", func(p *Proc) {
		mu.Lock(p)
		p.Sleep(simtime.Never) // parked forever, as servers are
	})
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(simtime.Second)
		}
	})
	if _, err := e.RunGuarded(5 * simtime.Second); err != nil {
		t.Fatalf("deadline-reaching run flagged: %v", err)
	}
	if _, err := e.RunGuarded(simtime.Never); err != nil {
		t.Fatalf("full drain flagged: %v", err)
	}
}

func TestCloseReportsStuckProcNames(t *testing.T) {
	// liveNames (the helper Close's panic message uses) must name procs
	// deterministically in spawn order.
	e := newTestEnv(t, 1)
	e.Go("alpha", func(p *Proc) { p.Sleep(simtime.Never) })
	e.Go("beta", func(p *Proc) { p.Sleep(simtime.Never) })
	e.RunUntil(1)
	names := e.liveNames()
	if len(names) != 2 || names[0] != "alpha#1" || names[1] != "beta#2" {
		t.Fatalf("liveNames = %v", names)
	}
	e.Close()
}

// TestCloseReapsEveryPrimitive kills procs blocked on each
// synchronization primitive the engine offers and checks that Close
// unwinds all of them — the post-fault teardown path the resilient
// experiment runner depends on.
func TestCloseReapsEveryPrimitive(t *testing.T) {
	e := newTestEnv(t, 1)

	var mu Mutex
	e.Go("mutex-holder", func(p *Proc) {
		mu.Lock(p)
		p.Sleep(simtime.Never)
	})
	e.Go("mutex-waiter", func(p *Proc) {
		p.Compute(10)
		mu.Lock(p)
	})

	var cmu Mutex
	cond := NewCond(&cmu)
	e.Go("cond-waiter", func(p *Proc) {
		cmu.Lock(p)
		cond.Wait(p) // never signalled
	})

	bar := NewBarrier(2)
	e.Go("barrier-waiter", func(p *Proc) {
		bar.Wait(p) // partner never arrives
	})

	sem := NewSemaphore(0)
	e.Go("semaphore-waiter", func(p *Proc) {
		sem.Acquire(p, 1) // never released
	})

	q := NewQueue[int](e)
	e.Go("queue-getter", func(p *Proc) {
		q.Get(p) // never put
	})

	wg := NewWaitGroup(e)
	wg.Add(1)
	e.Go("waitgroup-waiter", func(p *Proc) {
		wg.Wait(p) // never done
	})

	e.RunUntil(1)
	if e.NumLive() != 7 {
		t.Fatalf("live = %d, want 7 parked procs", e.NumLive())
	}
	e.Close()
	if e.NumLive() != 0 {
		t.Fatalf("Close left %d procs", e.NumLive())
	}
}

// TestKillBlockedOnEveryPrimitive kills individual procs parked on each
// primitive mid-run (not at teardown) and verifies the primitive
// survives for its other users.
func TestKillBlockedOnEveryPrimitive(t *testing.T) {
	e := newTestEnv(t, 1)
	defer e.Close()

	bar := NewBarrier(2)
	sem := NewSemaphore(0)
	q := NewQueue[int](e)
	var mu Mutex
	cond := NewCond(&mu)

	victims := []*Proc{
		e.Go("barrier-victim", func(p *Proc) { bar.Wait(p) }),
		e.Go("semaphore-victim", func(p *Proc) { sem.Acquire(p, 1) }),
		e.Go("queue-victim", func(p *Proc) { q.Get(p) }),
		e.Go("cond-victim", func(p *Proc) {
			mu.Lock(p)
			cond.Wait(p)
		}),
	}
	e.RunUntil(1)
	for _, v := range victims {
		e.Kill(v)
	}
	e.RunUntil(2)
	if e.NumLive() != 0 {
		t.Fatalf("killed victims still live: %d", e.NumLive())
	}

	// The primitives must still work for live procs: Cond.Wait released
	// the mutex on unwind? No — a killed proc that owned a mutex leaves
	// it held (documented); Cond re-acquires before unwinding, so the
	// mutex is held by the dead cond-victim. Verify the others.
	okSem, okQueue := false, false
	e.Go("semaphore-user", func(p *Proc) {
		sem.Acquire(p, 1)
		okSem = true
	})
	sem.Release(e, 1)
	e.Go("queue-user", func(p *Proc) {
		if _, ok := q.Get(p); ok {
			okQueue = true
		}
	})
	q.Put(7)
	e.RunUntil(3)
	if !okSem || !okQueue {
		t.Fatalf("primitives broken after kill: sem=%v queue=%v", okSem, okQueue)
	}
}
