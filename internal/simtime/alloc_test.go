package simtime

import "testing"

// countHandler is a trivial Handler for exercising the payload path.
type countHandler struct{ fired int }

func (h *countHandler) HandleEvent(kind int, arg any) { h.fired++ }

// TestAfterCallHeapSteadyStateAllocs pins the free-list contract: once a
// queue has warmed up, scheduling and firing payload events through the
// heap (non-zero delay) allocates nothing — every fired event is recycled
// into the next ScheduleCall.
func TestAfterCallHeapSteadyStateAllocs(t *testing.T) {
	var q Queue
	h := &countHandler{}
	for i := 0; i < 64; i++ {
		q.AfterCall(Duration(i+1), h, 0, nil)
	}
	q.Run()

	allocs := testing.AllocsPerRun(200, func() {
		q.AfterCall(1, h, 0, nil)
		q.AfterCall(2, h, 0, nil)
		q.Run()
	})
	if allocs != 0 {
		t.Fatalf("heap AfterCall steady state allocates %v per run, want 0", allocs)
	}
}

// TestAfterCallRingSteadyStateAllocs pins the same contract for the
// at-now ring fast path (zero delay).
func TestAfterCallRingSteadyStateAllocs(t *testing.T) {
	var q Queue
	h := &countHandler{}
	for i := 0; i < 64; i++ {
		q.AfterCall(0, h, 0, nil)
	}
	q.Run()

	allocs := testing.AllocsPerRun(200, func() {
		q.AfterCall(0, h, 0, nil)
		q.Run()
	})
	if allocs != 0 {
		t.Fatalf("ring AfterCall steady state allocates %v per run, want 0", allocs)
	}
}

// TestFreeListReuse checks the recycling round-trip directly: a fired
// payload event's storage is handed to the next ScheduleCall.
func TestFreeListReuse(t *testing.T) {
	var q Queue
	h := &countHandler{}
	ev := q.AfterCall(5, h, 0, nil)
	q.Run()
	ev2 := q.AfterCall(7, h, 1, nil)
	if ev != ev2 {
		t.Fatal("fired payload event was not recycled into the next ScheduleCall")
	}
	q.Run()
	if h.fired != 2 {
		t.Fatalf("fired = %d, want 2", h.fired)
	}
}
