package simtime

import "testing"

// countHandler is a trivial Handler for exercising the payload path.
type countHandler struct{ fired int }

func (h *countHandler) HandleEvent(kind int, arg any) { h.fired++ }

// TestAfterCallHeapSteadyStateAllocs pins the free-list contract: once a
// queue has warmed up, scheduling and firing payload events through the
// heap (non-zero delay) allocates nothing — every fired event is recycled
// into the next ScheduleCall.
func TestAfterCallHeapSteadyStateAllocs(t *testing.T) {
	var q Queue
	h := &countHandler{}
	for i := 0; i < 64; i++ {
		q.AfterCall(Duration(i+1), h, 0, nil)
	}
	q.Run()

	allocs := testing.AllocsPerRun(200, func() {
		q.AfterCall(1, h, 0, nil)
		q.AfterCall(2, h, 0, nil)
		q.Run()
	})
	if allocs != 0 {
		t.Fatalf("heap AfterCall steady state allocates %v per run, want 0", allocs)
	}
}

// TestAfterCallRingSteadyStateAllocs pins the same contract for the
// at-now ring fast path (zero delay).
func TestAfterCallRingSteadyStateAllocs(t *testing.T) {
	var q Queue
	h := &countHandler{}
	for i := 0; i < 64; i++ {
		q.AfterCall(0, h, 0, nil)
	}
	q.Run()

	allocs := testing.AllocsPerRun(200, func() {
		q.AfterCall(0, h, 0, nil)
		q.Run()
	})
	if allocs != 0 {
		t.Fatalf("ring AfterCall steady state allocates %v per run, want 0", allocs)
	}
}

// TestFreeListReuse checks the recycling round-trip directly: a fired
// payload event's storage is handed to the next ScheduleCall, and the
// two Refs carry distinct generations for the shared Event.
func TestFreeListReuse(t *testing.T) {
	var q Queue
	h := &countHandler{}
	ev := q.AfterCall(5, h, 0, nil)
	q.Run()
	ev2 := q.AfterCall(7, h, 1, nil)
	if ev.e != ev2.e {
		t.Fatal("fired payload event was not recycled into the next ScheduleCall")
	}
	if ev.gen == ev2.gen {
		t.Fatal("recycled event kept its generation; stale Refs would alias it")
	}
	q.Run()
	if h.fired != 2 {
		t.Fatalf("fired = %d, want 2", h.fired)
	}
}

// TestStaleRefInert pins the generation check: a Ref held past firing
// must not observe or cancel the unrelated pending event that recycled
// its storage.
func TestStaleRefInert(t *testing.T) {
	var q Queue
	h := &countHandler{}
	stale := q.AfterCall(5, h, 0, nil)
	q.Run()
	fresh := q.AfterCall(7, h, 1, nil)
	if fresh.e != stale.e {
		t.Fatal("test setup: storage was not recycled")
	}
	if stale.Scheduled() {
		t.Error("stale Ref reports the aliased event as scheduled")
	}
	if q.CancelRef(stale) {
		t.Error("stale Ref cancelled the aliased event")
	}
	if !fresh.Scheduled() {
		t.Error("fresh event no longer pending after stale-Ref operations")
	}
	q.Run()
	if h.fired != 2 {
		t.Fatalf("fired = %d, want 2 (the fresh event must still fire)", h.fired)
	}

	// A zero Ref is equally inert.
	if (Ref{}).Scheduled() {
		t.Error("zero Ref reports scheduled")
	}
	if q.CancelRef(Ref{}) {
		t.Error("zero Ref cancelled something")
	}

	// A live Ref still cancels its own event exactly once.
	live := q.AfterCall(3, h, 0, nil)
	if !q.CancelRef(live) {
		t.Error("live Ref failed to cancel its pending event")
	}
	if q.CancelRef(live) {
		t.Error("double CancelRef reported a pending event")
	}
}
