// Package simtime provides the virtual-time foundation of the simulator:
// a Time type measured in seconds of simulated wall-clock time, and an
// event queue ordered by time with stable FIFO tie-breaking so that
// simulations are fully deterministic.
//
// The queue is engineered for the engine's hot path (see DESIGN.md §8):
// a concrete 4-ary min-heap over *Event (no interface boxing, shallower
// than a binary heap for the same fan-out), a FIFO ring buffer that
// lets the dominant at-now traffic (wakeups, After(0, ...)) bypass the
// heap entirely, and a per-queue free-list so payload-based events
// (ScheduleCall/AfterCall) allocate nothing in steady state. Dispatch
// order is exactly the (time, sequence) order a single heap would
// produce: every at-now event necessarily carries a later sequence
// number than any heap event pending at the same instant, so draining
// heap events at now before ring events preserves FIFO tie-breaking
// bit-for-bit.
package simtime

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since the start of the
// simulation. Negative times are invalid except for the sentinel Never.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = Time

// Common durations, for readability at call sites.
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
)

// Never is a sentinel meaning "no scheduled time". It sorts after every
// valid time.
const Never Time = Time(math.MaxFloat64)

// String renders the time with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t >= Minute:
		return fmt.Sprintf("%.3fmin", float64(t/Minute))
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t/Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t/Microsecond))
	default:
		return fmt.Sprintf("%.3fns", float64(t/Nanosecond))
	}
}

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Handler receives payload-based events scheduled with ScheduleCall or
// AfterCall. A single handler serves many event kinds; kind and arg are
// whatever the scheduling site passed, so one long-lived handler plus a
// pointer payload replaces a fresh closure per event.
type Handler interface {
	HandleEvent(kind int, arg any)
}

// Placement sentinels for Event.where (values >= 0 are heap indices).
const (
	whereNone          = -1 // not queued (fired, cancelled, or recycled)
	whereRing          = -2 // pending in the at-now ring
	whereRingCancelled = -3 // cancelled but its ring slot not yet drained
)

// Event is a callback scheduled to fire at a specific simulated time.
// It carries either a closure (Schedule/After) or a handler plus
// payload (ScheduleCall/AfterCall); the latter form is recycled through
// the queue's free-list and is therefore handed out as a
// generation-checked Ref rather than a bare pointer.
type Event struct {
	at  Time
	seq uint64

	fire func()  // closure form
	h    Handler // payload form: h.HandleEvent(kind, arg)
	kind int
	arg  any

	where   int    // heap index, or a where* sentinel
	recycle bool   // payload events return to the free-list
	gen     uint64 // bumped by alloc; stale Refs carry an older value
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Scheduled reports whether the event is still pending in a queue.
func (e *Event) Scheduled() bool { return e.where >= 0 || e.where == whereRing }

// Ref is a generation-checked handle to a payload event scheduled with
// ScheduleCall/AfterCall. Payload events recycle through the queue's
// free-list, so a bare *Event held past firing could alias a completely
// unrelated pending event; a Ref additionally captures the event's
// generation at scheduling time, and CancelRef/Scheduled on a stale Ref
// are inert no-ops (one uint64 compare, no allocation). The zero Ref
// refers to nothing.
type Ref struct {
	e   *Event
	gen uint64
}

// Scheduled reports whether the referenced event is still pending.
// A zero or stale Ref reports false.
func (r Ref) Scheduled() bool { return r.e != nil && r.e.gen == r.gen && r.e.Scheduled() }

// Queue is a time-ordered event queue. Events at equal times fire in the
// order they were scheduled (FIFO), which keeps simulations deterministic.
// The zero value is ready to use.
type Queue struct {
	h eventHeap // events strictly after now

	// ring holds events scheduled exactly at now, in FIFO order:
	// live slots occupy ring[rhead:]. The slice resets (retaining its
	// backing array) whenever the instant fully drains, which it must
	// before the clock can advance.
	ring     []*Event
	rhead    int
	ringLive int // live (non-cancelled) slots in ring[rhead:]

	free []*Event // recycled payload events

	seq uint64
	now Time
}

// Now returns the current simulated time: the fire time of the most
// recently dispatched event (0 before any event fires).
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) + q.ringLive }

// alloc prepares an Event (recycled when possible) for time at.
func (q *Queue) alloc(at Time) *Event {
	if at < q.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", at, q.now))
	}
	q.seq++
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		// Grow the pool a slab at a time: one backing allocation covers
		// the next 32 events, so a fresh queue reaches its steady-state
		// population in O(peak/32) allocations instead of O(peak).
		slab := make([]Event, 32)
		for i := range slab[1:] {
			q.free = append(q.free, &slab[1+i])
		}
		e = &slab[0]
	}
	e.at = at
	e.seq = q.seq
	e.where = whereNone
	e.gen++
	return e
}

// insert places a prepared event: at-now events take the ring fast
// path, later ones the heap.
func (q *Queue) insert(e *Event) {
	if e.at == q.now {
		e.where = whereRing
		q.ring = append(q.ring, e)
		q.ringLive++
		return
	}
	q.h.push(e)
}

// release clears an event's payload and returns recyclable ones to the
// free-list.
func (q *Queue) release(e *Event) {
	e.fire = nil
	e.h = nil
	e.arg = nil
	e.where = whereNone
	if e.recycle {
		e.recycle = false
		q.free = append(q.free, e)
	}
}

// Schedule enqueues fn to run at time at. It panics if at precedes the
// current time, since causality violations indicate a simulation bug.
func (q *Queue) Schedule(at Time, fn func()) *Event {
	if fn == nil {
		panic("simtime: nil event function")
	}
	e := q.alloc(at)
	e.fire = fn
	q.insert(e)
	return e
}

// After enqueues fn to run d seconds from the current time.
func (q *Queue) After(d Duration, fn func()) *Event {
	return q.Schedule(q.now+d, fn)
}

// ScheduleCall enqueues h.HandleEvent(kind, arg) to run at time at.
// Unlike Schedule it allocates nothing in steady state: the Event comes
// from the queue's free-list and returns to it when the event fires or
// is cancelled. The returned Ref is generation-checked, so holding it
// past firing is harmless — CancelRef and Scheduled on a Ref whose event
// has since fired (or been recycled into a new event) do nothing.
func (q *Queue) ScheduleCall(at Time, h Handler, kind int, arg any) Ref {
	if h == nil {
		panic("simtime: nil event handler")
	}
	e := q.alloc(at)
	e.h = h
	e.kind = kind
	e.arg = arg
	e.recycle = true
	q.insert(e)
	return Ref{e: e, gen: e.gen}
}

// AfterCall enqueues h.HandleEvent(kind, arg) to run d seconds from the
// current time, with ScheduleCall's allocation-free contract.
func (q *Queue) AfterCall(d Duration, h Handler, kind int, arg any) Ref {
	return q.ScheduleCall(q.now+d, h, kind, arg)
}

// CancelRef removes the pending payload event r refers to. A zero Ref,
// or one whose event already fired, was already cancelled, or has been
// recycled into a different event, is an inert no-op. It returns whether
// the event was pending.
func (q *Queue) CancelRef(r Ref) bool {
	if r.e == nil || r.e.gen != r.gen {
		return false
	}
	return q.Cancel(r.e)
}

// Cancel removes a pending closure event (Schedule/After). Cancelling an
// event that already fired or was already cancelled is a no-op. Payload
// events are cancelled through their Ref (see CancelRef). It returns
// whether the event was pending.
func (q *Queue) Cancel(e *Event) bool {
	if e == nil {
		return false
	}
	switch {
	case e.where >= 0:
		q.h.remove(e.where)
		q.release(e)
		return true
	case e.where == whereRing:
		// The ring slot is drained (and the event recycled) lazily by
		// the dispatch loop; only the liveness bookkeeping happens now.
		e.where = whereRingCancelled
		e.fire = nil
		e.h = nil
		e.arg = nil
		q.ringLive--
		return true
	}
	return false
}

// ringPop removes and returns the earliest live ring event, draining
// cancelled slots along the way. Call only when ringLive > 0.
func (q *Queue) ringPop() *Event {
	for {
		e := q.ring[q.rhead]
		q.ring[q.rhead] = nil
		q.rhead++
		if q.rhead == len(q.ring) {
			q.ring = q.ring[:0]
			q.rhead = 0
		}
		if e.where == whereRingCancelled {
			e.where = whereNone
			if e.recycle {
				e.recycle = false
				q.free = append(q.free, e)
			}
			continue
		}
		q.ringLive--
		return e
	}
}

// flushRing recycles trailing cancelled slots once no live ring events
// remain, so an idle queue retains nothing.
func (q *Queue) flushRing() {
	for q.rhead < len(q.ring) {
		e := q.ring[q.rhead]
		q.ring[q.rhead] = nil
		q.rhead++
		e.where = whereNone
		if e.recycle {
			e.recycle = false
			q.free = append(q.free, e)
		}
	}
	q.ring = q.ring[:0]
	q.rhead = 0
}

// next removes and returns the earliest pending event, or nil. Heap
// events pending at exactly now fire before ring events: they were
// necessarily scheduled earlier (an at-now Schedule always lands in the
// ring), so this is precisely (time, seq) order.
func (q *Queue) next() *Event {
	if q.ringLive > 0 {
		if len(q.h) > 0 && q.h[0].at <= q.now {
			return q.h.pop()
		}
		return q.ringPop()
	}
	if q.rhead < len(q.ring) {
		q.flushRing()
	}
	if len(q.h) > 0 {
		return q.h.pop()
	}
	return nil
}

// Step dispatches the single earliest event, advancing the clock to its
// fire time. It returns false if the queue is empty.
func (q *Queue) Step() bool {
	e := q.next()
	if e == nil {
		return false
	}
	q.now = e.at
	fire, h, kind, arg := e.fire, e.h, e.kind, e.arg
	// Release before invoking so the handler's own scheduling reuses
	// the just-freed Event immediately.
	q.release(e)
	if h != nil {
		h.HandleEvent(kind, arg)
	} else {
		fire()
	}
	return true
}

// RunUntil dispatches events until the queue is empty or the next event
// would fire after the deadline. It returns the number of events fired.
// Events scheduled exactly at the deadline do fire.
func (q *Queue) RunUntil(deadline Time) int {
	n := 0
	for {
		t := q.PeekTime()
		if t == Never || t > deadline {
			break
		}
		q.Step()
		n++
	}
	if q.now < deadline && deadline != Never {
		q.now = deadline
	}
	return n
}

// AdvanceTo moves the clock forward to t without dispatching anything.
// It is the primitive RunUntil-style drivers use to settle the clock on
// their deadline after the last in-range event has fired. Advancing past
// a pending event would violate causality and panics; advancing to the
// past or to Never is a no-op.
func (q *Queue) AdvanceTo(t Time) {
	if t == Never || t <= q.now {
		return
	}
	if q.ringLive > 0 {
		panic(fmt.Sprintf("simtime: AdvanceTo(%v) would skip event at %v", t, q.now))
	}
	if len(q.h) > 0 && q.h[0].at < t {
		panic(fmt.Sprintf("simtime: AdvanceTo(%v) would skip event at %v", t, q.h[0].at))
	}
	q.now = t
}

// Run dispatches events until the queue drains, returning the count.
func (q *Queue) Run() int {
	n := 0
	for q.Step() {
		n++
	}
	return n
}

// PeekTime returns the fire time of the earliest pending event, or Never
// if the queue is empty.
func (q *Queue) PeekTime() Time {
	if q.ringLive > 0 {
		return q.now
	}
	if len(q.h) == 0 {
		return Never
	}
	return q.h[0].at
}

// eventHeap is a concrete 4-ary min-heap over *Event ordered by
// (time, sequence). Four-way fan-out halves the tree depth of a binary
// heap, and the concrete element type avoids container/heap's per-op
// interface calls and `any` boxing.
type eventHeap []*Event

// less orders events by (time, sequence).
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e *Event) {
	*h = append(*h, e)
	e.where = len(*h) - 1
	h.siftUp(e.where)
}

func (h *eventHeap) pop() *Event {
	s := *h
	e := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[0].where = 0
	s[n] = nil
	*h = s[:n]
	if n > 1 {
		h.siftDown(0)
	}
	e.where = whereNone
	return e
}

// remove deletes the event at heap index i.
func (h *eventHeap) remove(i int) {
	s := *h
	n := len(s) - 1
	e := s[i]
	if i != n {
		s[i] = s[n]
		s[i].where = i
	}
	s[n] = nil
	*h = s[:n]
	if i != n {
		h.siftDown(i)
		h.siftUp(i)
	}
	e.where = whereNone
}

func (h eventHeap) siftUp(i int) {
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].where = i
		i = p
	}
	h[i] = e
	e.where = i
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	e := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Find the smallest of up to four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], e) {
			break
		}
		h[i] = h[m]
		h[i].where = i
		i = m
	}
	h[i] = e
	e.where = i
}
