// Package simtime provides the virtual-time foundation of the simulator:
// a Time type measured in seconds of simulated wall-clock time, and an
// event queue ordered by time with stable FIFO tie-breaking so that
// simulations are fully deterministic.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since the start of the
// simulation. Negative times are invalid except for the sentinel Never.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = Time

// Common durations, for readability at call sites.
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
)

// Never is a sentinel meaning "no scheduled time". It sorts after every
// valid time.
const Never Time = Time(math.MaxFloat64)

// String renders the time with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t >= Minute:
		return fmt.Sprintf("%.3fmin", float64(t/Minute))
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t/Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t/Microsecond))
	default:
		return fmt.Sprintf("%.3fns", float64(t/Nanosecond))
	}
}

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Event is a callback scheduled to fire at a specific simulated time.
type Event struct {
	at   Time
	seq  uint64
	fire func()

	index int // heap index; -1 when not queued
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Scheduled reports whether the event is still pending in a queue.
func (e *Event) Scheduled() bool { return e.index >= 0 }

// Queue is a time-ordered event queue. Events at equal times fire in the
// order they were scheduled (FIFO), which keeps simulations deterministic.
// The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
	now Time
}

// Now returns the current simulated time: the fire time of the most
// recently dispatched event (0 before any event fires).
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time at. It panics if at precedes the
// current time, since causality violations indicate a simulation bug.
func (q *Queue) Schedule(at Time, fn func()) *Event {
	if at < q.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", at, q.now))
	}
	if fn == nil {
		panic("simtime: nil event function")
	}
	q.seq++
	e := &Event{at: at, seq: q.seq, fire: fn, index: -1}
	heap.Push(&q.h, e)
	return e
}

// After enqueues fn to run d seconds from the current time.
func (q *Queue) After(d Duration, fn func()) *Event {
	return q.Schedule(q.now+d, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired
// or was already cancelled is a no-op. It returns whether the event was
// pending.
func (q *Queue) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&q.h, e.index)
	e.index = -1
	e.fire = nil
	return true
}

// Step dispatches the single earliest event, advancing the clock to its
// fire time. It returns false if the queue is empty.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	e.index = -1
	q.now = e.at
	fn := e.fire
	e.fire = nil
	fn()
	return true
}

// RunUntil dispatches events until the queue is empty or the next event
// would fire after the deadline. It returns the number of events fired.
// Events scheduled exactly at the deadline do fire.
func (q *Queue) RunUntil(deadline Time) int {
	n := 0
	for len(q.h) > 0 && q.h[0].at <= deadline {
		q.Step()
		n++
	}
	if q.now < deadline && deadline != Never {
		q.now = deadline
	}
	return n
}

// AdvanceTo moves the clock forward to t without dispatching anything.
// It is the primitive RunUntil-style drivers use to settle the clock on
// their deadline after the last in-range event has fired. Advancing past
// a pending event would violate causality and panics; advancing to the
// past or to Never is a no-op.
func (q *Queue) AdvanceTo(t Time) {
	if t == Never || t <= q.now {
		return
	}
	if len(q.h) > 0 && q.h[0].at < t {
		panic(fmt.Sprintf("simtime: AdvanceTo(%v) would skip event at %v", t, q.h[0].at))
	}
	q.now = t
}

// Run dispatches events until the queue drains, returning the count.
func (q *Queue) Run() int {
	n := 0
	for q.Step() {
		n++
	}
	return n
}

// PeekTime returns the fire time of the earliest pending event, or Never
// if the queue is empty.
func (q *Queue) PeekTime() Time {
	if len(q.h) == 0 {
		return Never
	}
	return q.h[0].at
}

// eventHeap implements heap.Interface ordered by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
