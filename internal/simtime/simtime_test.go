package simtime

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQueueOrdersByTime(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(3, func() { got = append(got, 3) })
	q.Schedule(1, func() { got = append(got, 1) })
	q.Schedule(2, func() { got = append(got, 2) })
	q.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestQueueFIFOAtEqualTimes(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(5, func() { got = append(got, i) })
	}
	q.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("events at equal time fired out of order: got[%d] = %d", i, v)
		}
	}
}

func TestQueueNowAdvances(t *testing.T) {
	var q Queue
	q.Schedule(2.5, func() {})
	if q.Now() != 0 {
		t.Fatalf("Now before Run = %v, want 0", q.Now())
	}
	q.Step()
	if q.Now() != 2.5 {
		t.Fatalf("Now after Step = %v, want 2.5", q.Now())
	}
}

func TestQueueAfterIsRelative(t *testing.T) {
	var q Queue
	var at Time
	q.Schedule(10, func() {
		q.After(5, func() { at = q.Now() })
	})
	q.Run()
	if at != 15 {
		t.Fatalf("After(5) from t=10 fired at %v, want 15", at)
	}
}

func TestQueueSchedulePastPanics(t *testing.T) {
	var q Queue
	q.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		q.Schedule(5, func() {})
	})
	q.Run()
}

func TestQueueNilFuncPanics(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Error("nil event function did not panic")
		}
	}()
	q.Schedule(1, nil)
}

func TestQueueCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.Schedule(1, func() { fired = true })
	if !e.Scheduled() {
		t.Fatal("event not marked scheduled")
	}
	if !q.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Scheduled() {
		t.Fatal("cancelled event still marked scheduled")
	}
	if q.Cancel(e) {
		t.Fatal("second Cancel returned true")
	}
	q.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestQueueCancelMiddle(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(1, func() { got = append(got, 1) })
	e := q.Schedule(2, func() { got = append(got, 2) })
	q.Schedule(3, func() { got = append(got, 3) })
	q.Cancel(e)
	q.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestQueueCancelNil(t *testing.T) {
	var q Queue
	if q.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var got []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		q.Schedule(at, func() { got = append(got, at) })
	}
	n := q.RunUntil(3)
	if n != 3 {
		t.Fatalf("RunUntil fired %d events, want 3 (events at deadline fire)", n)
	}
	if q.Now() != 3 {
		t.Fatalf("Now = %v, want 3", q.Now())
	}
	if q.Len() != 2 {
		t.Fatalf("pending = %d, want 2", q.Len())
	}
}

func TestRunUntilAdvancesToDeadlineWhenIdle(t *testing.T) {
	var q Queue
	q.RunUntil(42)
	if q.Now() != 42 {
		t.Fatalf("Now = %v, want 42", q.Now())
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	if q.PeekTime() != Never {
		t.Fatal("PeekTime on empty queue != Never")
	}
	q.Schedule(7, func() {})
	if q.PeekTime() != 7 {
		t.Fatalf("PeekTime = %v, want 7", q.PeekTime())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{Never, "never"},
		{90, "1.500min"},
		{1.5, "1.500s"},
		{2 * Millisecond, "2.000ms"},
		{3 * Microsecond, "3.000us"},
		{4 * Nanosecond, "4.000ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.t), got, c.want)
		}
	}
}

func TestBeforeAfter(t *testing.T) {
	if !Time(1).Before(2) || Time(2).Before(1) || Time(1).Before(1) {
		t.Error("Before misbehaves")
	}
	if !Time(2).After(1) || Time(1).After(2) || Time(1).After(1) {
		t.Error("After misbehaves")
	}
}

// Property: for any batch of events with random times, dispatch order is
// sorted by time and stable for ties.
func TestQueueDispatchOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		var q Queue
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, raw := range times {
			at := Time(raw % 64) // force many ties
			i := i
			q.Schedule(at, func() { fired = append(fired, rec{at, i}) })
		}
		q.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset fires exactly the complement.
func TestQueueCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		var q Queue
		n := 1 + rng.Intn(50)
		events := make([]*Event, n)
		firedSet := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			events[i] = q.Schedule(Time(rng.Intn(10)), func() { firedSet[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				q.Cancel(events[i])
				cancelled[i] = true
			}
		}
		q.Run()
		for i := 0; i < n; i++ {
			if firedSet[i] == cancelled[i] {
				t.Fatalf("trial %d event %d: fired=%v cancelled=%v", trial, i, firedSet[i], cancelled[i])
			}
		}
	}
}

func TestEventAt(t *testing.T) {
	var q Queue
	e := q.Schedule(9, func() {})
	if e.At() != 9 {
		t.Fatalf("At = %v, want 9", e.At())
	}
}

func TestStepOnEmpty(t *testing.T) {
	var q Queue
	if q.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}
