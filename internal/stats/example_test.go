package stats_test

import (
	"fmt"

	"asmp/internal/stats"
)

// Example computes the study's predictability score — the coefficient of
// variation of repeated runs — for a stable and an unstable series.
func Example() {
	stable := stats.NewSample(100, 101, 99, 100)
	unstable := stats.NewSample(100, 45, 98, 44)
	fmt.Printf("stable CoV:   %.3f\n", stable.CoV())
	fmt.Printf("unstable CoV: %.3f\n", unstable.CoV())
	// Output:
	// stable CoV:   0.008
	// unstable CoV: 0.439
}

// ExampleSpearman scores scalability the way the study's Table-1
// classifier does: does more compute power reliably mean more
// performance?
func ExampleSpearman() {
	power := []float64{4, 3.25, 2.25, 1, 0.5}
	throughputScales := []float64{400, 330, 220, 100, 50}
	throughputGated := []float64{400, 330, 60, 100, 90} // slowest-core-gated outliers
	fmt.Printf("scales: %.2f\n", stats.Spearman(power, throughputScales))
	fmt.Printf("gated:  %.2f\n", stats.Spearman(power, throughputGated))
	// Output:
	// scales: 1.00
	// gated:  0.70
}

// ExampleSummary_ErrorBar reproduces the paper's error bars: half the
// min-to-max spread of repeated runs.
func ExampleSummary_ErrorBar() {
	runs := stats.NewSample(2250, 5470, 5465, 2260)
	fmt.Printf("mean %.0f ± %.0f\n", runs.Mean(), runs.Summarize().ErrorBar())
	// Output:
	// mean 3861 ± 1610
}
