// Package stats provides the sample statistics the study is built on:
// summaries of repeated runs (mean, spread, percentiles), the
// coefficient-of-variation measure used to score predictability, and
// scalability fits of performance against machine compute power.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations and answers summary queries. The zero
// value is an empty sample.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a sample pre-loaded with xs (copied).
func NewSample(xs ...float64) *Sample {
	s := &Sample{}
	s.AddAll(xs)
	return s
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends all observations.
func (s *Sample) AddAll(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the observations. Order is not guaranteed once
// percentile queries have run; callers should treat the result as an
// unordered multiset.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Var returns the unbiased sample variance (n-1 denominator), or 0 when
// fewer than two observations exist.
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stdev returns the sample standard deviation.
func (s *Sample) Stdev() float64 { return math.Sqrt(s.Var()) }

// CoV returns the coefficient of variation (stdev/mean), the study's
// predictability score. It returns 0 for an empty sample and +Inf when
// the mean is zero but spread is not.
func (s *Sample) CoV() float64 {
	m := s.Mean()
	sd := s.Stdev()
	if sd == 0 {
		return 0
	}
	if m == 0 {
		return math.Inf(1)
	}
	return sd / math.Abs(m)
}

// Min returns the smallest observation, or +Inf for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.Inf(1)
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or -Inf for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.Inf(-1)
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Range returns Max - Min, or 0 for an empty sample.
func (s *Sample) Range() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.Max() - s.Min()
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It panics on an empty sample or
// out-of-range p.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if len(s.xs) == 1 {
		return s.xs[0]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Summary is a compact, serialisable description of a sample, suitable
// for figure rows and error bars.
type Summary struct {
	N      int
	Mean   float64
	Stdev  float64
	CoV    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func (s *Sample) Summarize() Summary {
	if len(s.xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		Stdev:  s.Stdev(),
		CoV:    s.CoV(),
		Min:    s.Min(),
		Max:    s.Max(),
		Median: s.Median(),
		P90:    s.Percentile(90),
	}
}

// String renders the summary as "mean ± stdev [min, max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g] (n=%d)", s.Mean, s.Stdev, s.Min, s.Max, s.N)
}

// ErrorBar returns the half-width of the error bar used throughout the
// figures: half the min-to-max spread, matching the paper's "performance
// variation over multiple runs" bars.
func (s Summary) ErrorBar() float64 { return (s.Max - s.Min) / 2 }

// LinearFit is a least-squares fit y = Slope*x + Intercept with the
// coefficient of determination R2.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear fits y against x by ordinary least squares. It panics when
// the slices differ in length or hold fewer than two points.
func FitLinear(x, y []float64) LinearFit {
	if len(x) != len(y) {
		panic("stats: FitLinear length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		panic("stats: FitLinear needs at least two points")
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		panic("stats: FitLinear with constant x")
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n
	// R^2 = 1 - SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// Spearman returns the Spearman rank-correlation coefficient between x
// and y, with ties assigned average ranks. It panics on mismatched or
// sub-2-length inputs. The result is in [-1, 1]: 1 means y is a
// monotonically increasing function of x.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Spearman length mismatch")
	}
	if len(x) < 2 {
		panic("stats: Spearman needs at least two points")
	}
	rx, ry := ranks(x), ranks(y)
	// Pearson correlation of the ranks handles ties correctly.
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range rx {
		sx += rx[i]
		sy += ry[i]
		sxx += rx[i] * rx[i]
		syy += ry[i] * ry[i]
		sxy += rx[i] * ry[i]
	}
	cov := sxy - sx*sy/n
	vx := sxx - sx*sx/n
	vy := syy - sy*sy/n
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// ranks returns average ranks (1-based) of xs.
func ranks(xs []float64) []float64 {
	type iv struct {
		i int
		v float64
	}
	order := make([]iv, len(xs))
	for i, v := range xs {
		order[i] = iv{i, v}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].v < order[b].v })
	out := make([]float64, len(xs))
	for i := 0; i < len(order); {
		j := i
		for j < len(order) && order[j].v == order[i].v {
			j++
		}
		avg := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			out[order[k].i] = avg
		}
		i = j
	}
	return out
}

// Speedup returns new/old for throughput-like metrics or old/new for
// runtime-like metrics, selected by higherIsBetter. A zero denominator
// yields +Inf.
func Speedup(baseline, measured float64, higherIsBetter bool) float64 {
	var num, den float64
	if higherIsBetter {
		num, den = measured, baseline
	} else {
		num, den = baseline, measured
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}
