package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEmptySample(t *testing.T) {
	s := NewSample()
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 || s.Stdev() != 0 || s.CoV() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty Min/Max sentinels wrong")
	}
	if s.Range() != 0 {
		t.Fatal("empty Range != 0")
	}
	sum := s.Summarize()
	if sum.N != 0 || sum.Mean != 0 {
		t.Fatal("empty Summarize not zero")
	}
}

func TestMeanVar(t *testing.T) {
	s := NewSample(2, 4, 4, 4, 5, 5, 7, 9)
	if !approx(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !approx(s.Var(), 32.0/7, 1e-12) {
		t.Fatalf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if !approx(s.Stdev(), math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("Stdev = %v", s.Stdev())
	}
}

func TestSingleObservation(t *testing.T) {
	s := NewSample(42)
	if s.Var() != 0 || s.Stdev() != 0 || s.CoV() != 0 {
		t.Fatal("single observation should have zero spread")
	}
	if s.Percentile(0) != 42 || s.Percentile(50) != 42 || s.Percentile(100) != 42 {
		t.Fatal("single observation percentiles wrong")
	}
}

func TestCoV(t *testing.T) {
	s := NewSample(10, 10, 10)
	if s.CoV() != 0 {
		t.Fatalf("constant sample CoV = %v, want 0", s.CoV())
	}
	s2 := NewSample(90, 110)
	want := s2.Stdev() / 100
	if !approx(s2.CoV(), want, 1e-12) {
		t.Fatalf("CoV = %v, want %v", s2.CoV(), want)
	}
	s3 := NewSample(-1, 1)
	if !math.IsInf(s3.CoV(), 1) {
		t.Fatalf("zero-mean CoV = %v, want +Inf", s3.CoV())
	}
}

func TestMinMaxRange(t *testing.T) {
	s := NewSample(3, -1, 7, 2)
	if s.Min() != -1 || s.Max() != 7 || s.Range() != 8 {
		t.Fatalf("Min/Max/Range = %v/%v/%v", s.Min(), s.Max(), s.Range())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := NewSample(10, 20, 30, 40)
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Fatalf("P100 = %v", got)
	}
	if got := s.Median(); !approx(got, 25, 1e-12) {
		t.Fatalf("median = %v, want 25", got)
	}
	// Rank for P90 over n=4 is 0.9*3 = 2.7 → 30 + 0.7*(40-30) = 37.
	if got := s.Percentile(90); !approx(got, 37, 1e-12) {
		t.Fatalf("P90 = %v, want 37", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, p := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			NewSample(1, 2).Percentile(p)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Percentile of empty sample did not panic")
			}
		}()
		NewSample().Percentile(50)
	}()
}

func TestAddAfterPercentile(t *testing.T) {
	s := NewSample(3, 1, 2)
	_ = s.Median()
	s.Add(0)
	if s.Min() != 0 || s.N() != 4 {
		t.Fatal("Add after Percentile lost data")
	}
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("P0 after Add = %v", got)
	}
}

func TestValuesCopies(t *testing.T) {
	s := NewSample(1, 2, 3)
	v := s.Values()
	v[0] = 99
	if s.Min() == 99 {
		t.Fatal("Values aliases internal storage")
	}
}

func TestSummarize(t *testing.T) {
	s := NewSample(1, 2, 3, 4, 5)
	sum := s.Summarize()
	if sum.N != 5 || sum.Mean != 3 || sum.Min != 1 || sum.Max != 5 || sum.Median != 3 {
		t.Fatalf("bad summary %+v", sum)
	}
	if sum.ErrorBar() != 2 {
		t.Fatalf("ErrorBar = %v, want 2", sum.ErrorBar())
	}
	if sum.String() == "" {
		t.Fatal("empty String")
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	f := FitLinear(x, y)
	if !approx(f.Slope, 2, 1e-9) || !approx(f.Intercept, 3, 1e-9) || !approx(f.R2, 1, 1e-9) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestFitLinearNoise(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5}
	y := []float64{0.1, 0.9, 2.2, 2.8, 4.1, 4.9}
	f := FitLinear(x, y)
	if f.Slope < 0.9 || f.Slope > 1.1 {
		t.Fatalf("slope = %v", f.Slope)
	}
	if f.R2 < 0.98 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestFitLinearPanics(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
	}{
		{"mismatch", []float64{1, 2}, []float64{1}},
		{"short", []float64{1}, []float64{1}},
		{"constant-x", []float64{2, 2, 2}, []float64{1, 2, 3}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FitLinear %s did not panic", c.name)
				}
			}()
			FitLinear(c.x, c.y)
		}()
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 200, true); got != 2 {
		t.Fatalf("throughput speedup = %v, want 2", got)
	}
	if got := Speedup(100, 200, false); got != 0.5 {
		t.Fatalf("runtime speedup = %v, want 0.5", got)
	}
	if got := Speedup(10, 5, false); got != 2 {
		t.Fatalf("runtime halved speedup = %v, want 2", got)
	}
	if !math.IsInf(Speedup(0, 1, true), 1) {
		t.Fatal("zero baseline throughput should give +Inf")
	}
}

// Property: mean is bounded by min and max; stdev is non-negative;
// percentiles are monotone.
func TestSampleInvariantsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		s := &Sample{}
		for _, v := range raw {
			s.Add(float64(v))
		}
		m := s.Mean()
		if m < s.Min()-1e-9 || m > s.Max()+1e-9 {
			return false
		}
		if s.Stdev() < 0 {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := s.Percentile(p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: shifting all observations by c shifts the mean by c and
// leaves the standard deviation unchanged.
func TestShiftInvarianceProperty(t *testing.T) {
	f := func(raw []int8, shift int8) bool {
		if len(raw) < 2 {
			return true
		}
		a, b := &Sample{}, &Sample{}
		for _, v := range raw {
			a.Add(float64(v))
			b.Add(float64(v) + float64(shift))
		}
		if !approx(b.Mean(), a.Mean()+float64(shift), 1e-9) {
			return false
		}
		return approx(b.Stdev(), a.Stdev(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
