// Package trace records structured scheduler events — dispatches,
// preemptions, migrations, steals, idle transitions — into a bounded
// ring buffer for tests, debugging and the asmp-trace tool. Tracing is
// opt-in per scheduler and adds one branch per event when disabled.
package trace

import (
	"fmt"
	"strings"

	"asmp/internal/simtime"
)

// Kind classifies a scheduler event.
type Kind int

const (
	// Dispatch: a task started running on a core.
	Dispatch Kind = iota
	// Preempt: a timeslice expired and the task was requeued.
	Preempt
	// Migrate: a task moved between cores (any cause).
	Migrate
	// Steal: an idle core pulled waiting work from a victim core.
	Steal
	// ForcedMigrate: the aware policy preempted a running task on a
	// slow core to run it on a faster idle one.
	ForcedMigrate
	// Idle: a core ran out of runnable work.
	Idle
	// Wake: a task became runnable and was placed on a core.
	Wake
	// Complete: a task finished its compute burst.
	Complete
	// Offline: a core was hot-unplugged (fault injection).
	Offline
	// Online: a core came back after hot-unplug.
	Online
	// Stall: the whole machine paused (firmware/SMI-style fault).
	Stall
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Dispatch:
		return "dispatch"
	case Preempt:
		return "preempt"
	case Migrate:
		return "migrate"
	case Steal:
		return "steal"
	case ForcedMigrate:
		return "forced-migrate"
	case Idle:
		return "idle"
	case Wake:
		return "wake"
	case Complete:
		return "complete"
	case Offline:
		return "offline"
	case Online:
		return "online"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded scheduler action.
type Event struct {
	// At is the simulated time of the event.
	At simtime.Time
	// Kind classifies the event.
	Kind Kind
	// Core is the core the event happened on (the destination core for
	// migrations and steals).
	Core int
	// From is the source core for migrations/steals, -1 otherwise.
	From int
	// Proc is the subject proc's id (0 when not applicable).
	Proc int
	// ProcName is the subject proc's name.
	ProcName string
}

// String renders the event as a single log line.
func (e Event) String() string {
	switch e.Kind {
	case Migrate, Steal, ForcedMigrate:
		return fmt.Sprintf("%-12v %-14s core%d<-core%d %s(%d)", e.At, e.Kind, e.Core, e.From, e.ProcName, e.Proc)
	case Stall:
		return fmt.Sprintf("%-12v %-14s machine", e.At, e.Kind)
	case Idle, Offline, Online:
		return fmt.Sprintf("%-12v %-14s core%d", e.At, e.Kind, e.Core)
	default:
		return fmt.Sprintf("%-12v %-14s core%d %s(%d)", e.At, e.Kind, e.Core, e.ProcName, e.Proc)
	}
}

// Tracer receives scheduler events as they happen. Implementations must
// be cheap and side-effect free with respect to the simulation: a tracer
// observes scheduling decisions, it never influences them. The two
// implementations in the repository are *Buffer (a bounded ring for
// inspection) and digest.Hasher (a streaming hash for run digests).
type Tracer interface {
	Record(Event)
}

// Tee fans events out to several tracers in argument order, skipping nil
// entries. It returns nil when every argument is nil, a single tracer
// unwrapped, or a composite otherwise.
func Tee(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return teeTracer(live)
	}
}

// teeTracer is the composite behind Tee.
type teeTracer []Tracer

// Record implements Tracer.
func (tt teeTracer) Record(e Event) {
	for _, t := range tt {
		t.Record(e)
	}
}

// Buffer is a bounded ring of events. The zero value is unusable; create
// with New. Buffer is not safe for concurrent use (the simulator is
// single-threaded).
type Buffer struct {
	events []Event
	next   int
	filled bool
	total  int
}

// New returns a ring buffer holding up to capacity events.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	return &Buffer{events: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest when full.
func (b *Buffer) Record(e Event) {
	b.events[b.next] = e
	b.next++
	b.total++
	if b.next == len(b.events) {
		b.next = 0
		b.filled = true
	}
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	if b.filled {
		return len(b.events)
	}
	return b.next
}

// Total returns the number of events ever recorded (retained or
// evicted).
func (b *Buffer) Total() int { return b.total }

// Events returns the retained events oldest-first.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, b.Len())
	if b.filled {
		out = append(out, b.events[b.next:]...)
	}
	out = append(out, b.events[:b.next]...)
	return out
}

// Count returns how many retained events have the given kind.
func (b *Buffer) Count(kind Kind) int {
	n := 0
	for _, e := range b.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Filter returns the retained events matching pred, oldest-first.
func (b *Buffer) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range b.Events() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events one per line.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CoreTimeline summarises, per core, how many dispatches each proc had —
// a quick view of placement persistence.
func (b *Buffer) CoreTimeline() map[int]map[string]int {
	out := map[int]map[string]int{}
	for _, e := range b.Events() {
		if e.Kind != Dispatch {
			continue
		}
		m := out[e.Core]
		if m == nil {
			m = map[string]int{}
			out[e.Core] = m
		}
		m[e.ProcName]++
	}
	return out
}
