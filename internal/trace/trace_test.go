package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"asmp/internal/simtime"
)

func ev(at float64, k Kind, core int) Event {
	return Event{At: simtime.Time(at), Kind: k, Core: core, From: -1, Proc: 1, ProcName: "w"}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{Dispatch, Preempt, Migrate, Steal, ForcedMigrate, Idle, Wake, Complete}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate kind string %q", s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestRecordAndEvents(t *testing.T) {
	b := New(4)
	for i := 0; i < 3; i++ {
		b.Record(ev(float64(i), Dispatch, i))
	}
	if b.Len() != 3 || b.Total() != 3 {
		t.Fatalf("Len=%d Total=%d", b.Len(), b.Total())
	}
	es := b.Events()
	for i, e := range es {
		if e.Core != i {
			t.Fatalf("order broken: %v", es)
		}
	}
}

func TestRingEviction(t *testing.T) {
	b := New(3)
	for i := 0; i < 7; i++ {
		b.Record(ev(float64(i), Dispatch, i))
	}
	if b.Len() != 3 || b.Total() != 7 {
		t.Fatalf("Len=%d Total=%d", b.Len(), b.Total())
	}
	es := b.Events()
	if es[0].Core != 4 || es[2].Core != 6 {
		t.Fatalf("eviction kept wrong events: %v", es)
	}
}

func TestCountAndFilter(t *testing.T) {
	b := New(10)
	b.Record(ev(0, Dispatch, 0))
	b.Record(ev(1, Steal, 1))
	b.Record(ev(2, Dispatch, 2))
	if b.Count(Dispatch) != 2 || b.Count(Steal) != 1 || b.Count(Idle) != 0 {
		t.Fatal("Count wrong")
	}
	f := b.Filter(func(e Event) bool { return e.Core >= 1 })
	if len(f) != 2 {
		t.Fatalf("Filter returned %d", len(f))
	}
}

func TestDumpAndString(t *testing.T) {
	b := New(10)
	b.Record(Event{At: 1, Kind: Migrate, Core: 0, From: 3, Proc: 7, ProcName: "gc"})
	b.Record(Event{At: 2, Kind: Idle, Core: 2, From: -1})
	d := b.Dump()
	if !strings.Contains(d, "migrate") || !strings.Contains(d, "core0<-core3") {
		t.Fatalf("dump missing migrate line: %q", d)
	}
	if !strings.Contains(d, "idle") {
		t.Fatalf("dump missing idle line: %q", d)
	}
}

func TestCoreTimeline(t *testing.T) {
	b := New(10)
	b.Record(Event{At: 0, Kind: Dispatch, Core: 0, ProcName: "a"})
	b.Record(Event{At: 1, Kind: Dispatch, Core: 0, ProcName: "a"})
	b.Record(Event{At: 2, Kind: Dispatch, Core: 1, ProcName: "b"})
	b.Record(Event{At: 3, Kind: Steal, Core: 1, ProcName: "a"}) // not a dispatch
	tl := b.CoreTimeline()
	if tl[0]["a"] != 2 || tl[1]["b"] != 1 || tl[1]["a"] != 0 {
		t.Fatalf("timeline wrong: %v", tl)
	}
}

// Property: for any sequence of records, Events() returns min(n, cap)
// events, oldest-first, and Total counts everything.
func TestRingProperty(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		b := New(capacity)
		total := int(n)
		for i := 0; i < total; i++ {
			b.Record(ev(float64(i), Dispatch, i))
		}
		if b.Total() != total {
			return false
		}
		want := total
		if want > capacity {
			want = capacity
		}
		es := b.Events()
		if len(es) != want {
			return false
		}
		for i, e := range es {
			if e.Core != total-want+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
