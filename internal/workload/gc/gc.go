// Package gc models the garbage collectors whose interaction with
// performance asymmetry drives the SPECjbb results in the paper
// (§3.1): a parallel stop-the-world collector and a generational
// concurrent collector running as an ordinary thread.
//
// The model captures exactly the mechanisms the paper identifies:
//
//   - The parallel collector pauses the application (threads block at
//     their next allocation) and splits collection work dynamically
//     across per-core helper threads, so its pause time tracks total
//     machine capacity and is largely placement-insensitive.
//
//   - The concurrent collector is a single thread scheduled like any
//     other. Where the OS happens to place it determines how fast it
//     reclaims memory; if it falls behind the application's allocation
//     rate the heap fills and allocators stall. On an asymmetric machine
//     this makes whole-run throughput depend on one placement decision,
//     which is the instability amplifier the paper observes.
package gc

import (
	"fmt"

	"asmp/internal/sim"
	"asmp/internal/workload"
)

// Kind selects a collector.
type Kind int

const (
	// None disables collection; Alloc never stalls.
	None Kind = iota
	// ParallelSTW is the stop-the-world parallel collector ("parallel GC"
	// in the paper's JRockit runs).
	ParallelSTW
	// ConcurrentGenerational is the single-threaded concurrent collector
	// ("generational concurrent GC" in the paper).
	ConcurrentGenerational
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case ParallelSTW:
		return "parallel"
	case ConcurrentGenerational:
		return "concurrent"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config parameterises a heap and its collector.
type Config struct {
	// Kind selects the collector.
	Kind Kind
	// HeapBytes is the heap capacity.
	HeapBytes float64
	// TriggerFraction starts a collection when used exceeds this fraction
	// of capacity.
	TriggerFraction float64
	// LiveFraction is the fraction of examined bytes that survive a
	// collection (the rest are reclaimed).
	LiveFraction float64
	// CyclesPerByte is the collection work per examined byte.
	CyclesPerByte float64
	// ParallelChunks is the number of work chunks a stop-the-world
	// collection is split into for dynamic distribution (ParallelSTW
	// only).
	ParallelChunks int
	// PinToCore, when >= 0, binds the concurrent collector thread to
	// that core. The default (-1, set by DefaultConfig) leaves placement
	// to the OS scheduler — which is the whole story of §3.1. Pinning
	// exists for ablation studies that make the placement lottery
	// explicit.
	PinToCore int
}

// DefaultConfig returns the tuning used by the SPECjbb model: a 512 MB
// heap, collection triggered at 60% occupancy, 30% survivors, and 2
// cycles of collector work per examined byte.
func DefaultConfig(kind Kind) Config {
	return Config{
		Kind:            kind,
		HeapBytes:       512e6,
		TriggerFraction: 0.6,
		LiveFraction:    0.3,
		CyclesPerByte:   2.0,
		ParallelChunks:  16,
		PinToCore:       -1,
	}
}

// Stats reports collector activity for a run.
type Stats struct {
	// Collections is the number of completed collections.
	Collections int
	// ReclaimedBytes is the total memory freed.
	ReclaimedBytes float64
	// StallEvents counts allocations that had to wait for the collector.
	StallEvents int
	// StallSeconds is the total simulated time allocators spent waiting.
	StallSeconds float64
}

// Heap is a simulated garbage-collected heap shared by the threads of
// one application.
type Heap struct {
	pl  *workload.Platform
	cfg Config

	used       float64
	collecting bool
	stats      Stats

	// Allocators stalled for space (or for the STW pause to end).
	stallers []*sim.Proc
	stallAt  map[*sim.Proc]float64

	// Concurrent collector wakeup.
	gcIdle  bool
	gcProcs []*sim.Proc
	gcKick  *sim.Queue[struct{}]

	// ParallelSTW work distribution.
	chunks     *sim.Queue[float64]
	chunksLeft int
}

// NewHeap builds a heap and spawns its collector threads on the
// platform. The collector threads run until the platform is closed.
func NewHeap(pl *workload.Platform, cfg Config) *Heap {
	if cfg.Kind != None {
		if cfg.HeapBytes <= 0 || cfg.TriggerFraction <= 0 || cfg.TriggerFraction >= 1 {
			panic("gc: bad heap geometry")
		}
		if cfg.LiveFraction < 0 || cfg.LiveFraction >= 1 {
			panic("gc: LiveFraction must be in [0, 1)")
		}
		if cfg.CyclesPerByte <= 0 {
			panic("gc: CyclesPerByte must be positive")
		}
	}
	h := &Heap{pl: pl, cfg: cfg, stallAt: map[*sim.Proc]float64{}}
	switch cfg.Kind {
	case None:
	case ParallelSTW:
		if cfg.ParallelChunks <= 0 {
			cfg.ParallelChunks = 16
			h.cfg = cfg
		}
		h.chunks = sim.NewQueue[float64](pl.Env)
		n := pl.Config.Fast + pl.Config.Slow
		for i := 0; i < n; i++ {
			core := i
			p := pl.Env.Go(fmt.Sprintf("gc-helper-%d", i), func(p *sim.Proc) {
				p.SetAffinity(sim.Single(core))
				h.runParallelHelper(p)
			})
			h.gcProcs = append(h.gcProcs, p)
		}
	case ConcurrentGenerational:
		h.gcKick = sim.NewQueue[struct{}](pl.Env)
		p := pl.Env.Go("gc-concurrent", func(p *sim.Proc) {
			if cfg.PinToCore >= 0 {
				p.SetAffinity(sim.Single(cfg.PinToCore))
			}
			h.runConcurrent(p)
		})
		h.gcProcs = append(h.gcProcs, p)
	default:
		panic(fmt.Sprintf("gc: unknown kind %v", cfg.Kind))
	}
	return h
}

// Used returns the current heap occupancy in bytes.
func (h *Heap) Used() float64 { return h.used }

// Stats returns a snapshot of collector activity.
func (h *Heap) Stats() Stats { return h.stats }

// Collecting reports whether a collection is in progress.
func (h *Heap) Collecting() bool { return h.collecting }

// Alloc allocates bytes from the heap on behalf of p, stalling p until
// the collector makes room (or, for the stop-the-world collector, until
// the pause ends). With Kind None it never stalls.
func (h *Heap) Alloc(p *sim.Proc, bytes float64) {
	if bytes < 0 {
		panic("gc: negative allocation")
	}
	if h.cfg.Kind == None {
		h.used += bytes
		return
	}
	for h.mustStall(bytes) {
		h.stall(p)
	}
	h.used += bytes
	h.maybeTrigger()
}

// mustStall reports whether an allocation of the given size has to wait.
func (h *Heap) mustStall(bytes float64) bool {
	if h.used+bytes > h.cfg.HeapBytes {
		return true
	}
	// The stop-the-world collector pauses allocators at their next
	// allocation (the safepoint) for the whole collection.
	return h.cfg.Kind == ParallelSTW && h.collecting
}

// stall parks p until the current collection completes.
func (h *Heap) stall(p *sim.Proc) {
	h.stats.StallEvents++
	h.stallAt[p] = float64(h.pl.Env.Now())
	h.stallers = append(h.stallers, p)
	if !h.collecting {
		// The heap is full but occupancy never crossed the trigger (a
		// single huge allocation): force a collection so we cannot
		// deadlock.
		h.startCollection()
	}
	p.Block()
}

// releaseStallers wakes every stalled allocator.
func (h *Heap) releaseStallers() {
	ss := h.stallers
	h.stallers = nil
	now := float64(h.pl.Env.Now())
	for _, p := range ss {
		if start, ok := h.stallAt[p]; ok {
			h.stats.StallSeconds += now - start
			delete(h.stallAt, p)
		}
		if !p.Done() {
			h.pl.Env.Wake(p)
		}
	}
}

// maybeTrigger starts a collection if occupancy crossed the trigger.
func (h *Heap) maybeTrigger() {
	if h.collecting || h.used < h.cfg.TriggerFraction*h.cfg.HeapBytes {
		return
	}
	h.startCollection()
}

// startCollection kicks the configured collector.
func (h *Heap) startCollection() {
	if h.collecting {
		return
	}
	h.collecting = true
	switch h.cfg.Kind {
	case ParallelSTW:
		work := h.used * h.cfg.CyclesPerByte
		n := h.cfg.ParallelChunks
		h.chunksLeft = n
		for i := 0; i < n; i++ {
			h.chunks.Put(work / float64(n))
		}
	case ConcurrentGenerational:
		h.gcKick.Put(struct{}{})
	}
}

// finishCollection reclaims garbage and releases stalled allocators.
func (h *Heap) finishCollection(examined float64) {
	freed := (1 - h.cfg.LiveFraction) * examined
	if freed > h.used {
		freed = h.used
	}
	h.used -= freed
	h.stats.ReclaimedBytes += freed
	h.stats.Collections++
	h.collecting = false
	h.releaseStallers()
	// Allocation may already be above the trigger again (concurrent
	// collector racing a fast allocator); restart immediately if so.
	h.maybeTrigger()
}

// runParallelHelper is the body of one stop-the-world GC worker, pinned
// to its core. Workers grab work chunks on demand, which is what makes
// parallel collection pause time track total machine capacity.
func (h *Heap) runParallelHelper(p *sim.Proc) {
	for {
		chunk, ok := h.chunks.Get(p)
		if !ok {
			return
		}
		p.Compute(chunk)
		h.chunksLeft--
		if h.chunksLeft == 0 {
			h.finishCollection(h.used)
		}
	}
}

// runConcurrent is the body of the concurrent collector thread. It is
// scheduled like any application thread — its placement is the whole
// point of the model.
func (h *Heap) runConcurrent(p *sim.Proc) {
	for {
		_, ok := h.gcKick.Get(p)
		if !ok {
			return
		}
		examined := h.used
		p.Compute(examined * h.cfg.CyclesPerByte)
		h.finishCollection(examined)
	}
}
