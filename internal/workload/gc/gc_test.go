package gc

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/sim"
	"asmp/internal/simtime"
	"asmp/internal/workload"
)

func newPlatform(t *testing.T, cfgName string, seed uint64) *workload.Platform {
	t.Helper()
	pl := workload.NewPlatform(cpu.MustParseConfig(cfgName), sched.Defaults(sched.PolicyNaive), seed)
	t.Cleanup(pl.Close)
	return pl
}

func TestKindString(t *testing.T) {
	if None.String() != "none" || ParallelSTW.String() != "parallel" ||
		ConcurrentGenerational.String() != "concurrent" || Kind(42).String() == "" {
		t.Fatal("kind names")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	c := DefaultConfig(ParallelSTW)
	if c.HeapBytes <= 0 || c.TriggerFraction <= 0 || c.TriggerFraction >= 1 ||
		c.LiveFraction < 0 || c.LiveFraction >= 1 || c.CyclesPerByte <= 0 || c.ParallelChunks <= 0 {
		t.Fatalf("bad defaults: %+v", c)
	}
}

func TestNoneNeverStalls(t *testing.T) {
	pl := newPlatform(t, "4f-0s", 1)
	h := NewHeap(pl, Config{Kind: None})
	pl.Env.Go("alloc", func(p *sim.Proc) {
		for i := 0; i < 1000; i++ {
			h.Alloc(p, 1e9) // way beyond any capacity
		}
	})
	pl.Env.Run()
	if h.Stats().StallEvents != 0 {
		t.Fatal("None collector stalled an allocation")
	}
	if h.Used() != 1000*1e9 {
		t.Fatalf("used = %v", h.Used())
	}
}

func TestValidation(t *testing.T) {
	pl := newPlatform(t, "4f-0s", 1)
	bad := []Config{
		{Kind: ParallelSTW, HeapBytes: 0, TriggerFraction: 0.5, LiveFraction: 0.3, CyclesPerByte: 1},
		{Kind: ParallelSTW, HeapBytes: 1e6, TriggerFraction: 1.5, LiveFraction: 0.3, CyclesPerByte: 1},
		{Kind: ParallelSTW, HeapBytes: 1e6, TriggerFraction: 0.5, LiveFraction: 1.0, CyclesPerByte: 1},
		{Kind: ParallelSTW, HeapBytes: 1e6, TriggerFraction: 0.5, LiveFraction: 0.3, CyclesPerByte: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewHeap(pl, cfg)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative allocation did not panic")
			}
		}()
		h := NewHeap(pl, Config{Kind: None})
		h.Alloc(nil, -1)
	}()
}

func TestParallelSTWCollects(t *testing.T) {
	pl := newPlatform(t, "4f-0s", 1)
	cfg := DefaultConfig(ParallelSTW)
	cfg.HeapBytes = 10e6
	h := NewHeap(pl, cfg)
	done := false
	pl.Env.Go("alloc", func(p *sim.Proc) {
		for i := 0; i < 2000; i++ {
			p.Compute(1e4)
			h.Alloc(p, 10e3) // 20 MB total through a 10 MB heap
		}
		done = true
	})
	pl.Env.RunUntil(60 * simtime.Second)
	if !done {
		t.Fatal("allocator did not finish (collector deadlock?)")
	}
	st := h.Stats()
	if st.Collections == 0 {
		t.Fatal("no collections happened")
	}
	if st.ReclaimedBytes <= 0 {
		t.Fatal("nothing reclaimed")
	}
	if h.Used() > cfg.HeapBytes {
		t.Fatalf("heap over capacity: %v", h.Used())
	}
}

func TestConcurrentCollects(t *testing.T) {
	pl := newPlatform(t, "4f-0s", 1)
	cfg := DefaultConfig(ConcurrentGenerational)
	cfg.HeapBytes = 10e6
	h := NewHeap(pl, cfg)
	done := false
	pl.Env.Go("alloc", func(p *sim.Proc) {
		for i := 0; i < 2000; i++ {
			p.Compute(1e4)
			h.Alloc(p, 10e3)
		}
		done = true
	})
	pl.Env.RunUntil(60 * simtime.Second)
	if !done {
		t.Fatal("allocator did not finish")
	}
	if h.Stats().Collections == 0 {
		t.Fatal("no collections")
	}
}

func TestSTWPausesAllAllocators(t *testing.T) {
	// During a stop-the-world collection every allocating thread must
	// stall at its next allocation.
	pl := newPlatform(t, "4f-0s", 1)
	cfg := DefaultConfig(ParallelSTW)
	cfg.HeapBytes = 50e6
	h := NewHeap(pl, cfg)
	for i := 0; i < 4; i++ {
		pl.Env.Go("alloc", func(p *sim.Proc) {
			for j := 0; j < 3000; j++ {
				p.Compute(1e4)
				h.Alloc(p, 10e3)
			}
		})
	}
	pl.Env.RunUntil(60 * simtime.Second)
	st := h.Stats()
	if st.Collections == 0 {
		t.Fatal("no collections")
	}
	// 4 allocators × collections: nearly every collection should stall
	// several allocators.
	if st.StallEvents < st.Collections {
		t.Fatalf("stall events %d too low for %d collections", st.StallEvents, st.Collections)
	}
	if st.StallSeconds <= 0 {
		t.Fatal("no stall time recorded")
	}
}

func TestConcurrentCollectorPlacementMatters(t *testing.T) {
	// The core mechanism of the paper's SPECjbb instability: pin the
	// concurrent collector to a fast vs a slow core and observe a large
	// difference in allocator progress.
	run := func(gcCore int) int {
		pl := workload.NewPlatform(cpu.MustParseConfig("2f-2s/8"), sched.Defaults(sched.PolicyNaive), 7)
		defer pl.Close()
		cfg := DefaultConfig(ConcurrentGenerational)
		h := NewHeap(pl, cfg)
		h.gcProcs[0].SetAffinity(sim.Single(gcCore))
		count := 0
		for i := 0; i < 8; i++ {
			pl.Env.Go("alloc", func(p *sim.Proc) {
				for {
					p.Compute(1e6)
					h.Alloc(p, 50e3)
					count++
				}
			})
		}
		pl.Env.RunUntil(5 * simtime.Second)
		return count
	}
	fast := run(0) // core 0 is fast in 2f-2s/8
	slow := run(3) // core 3 is 1/8 speed
	if float64(fast) < 1.5*float64(slow) {
		t.Fatalf("GC placement should matter: fast-pinned %d vs slow-pinned %d", fast, slow)
	}
}

func TestForcedCollectionOnHugeAllocation(t *testing.T) {
	// A single allocation larger than the remaining space but below the
	// trigger must still force a collection rather than deadlock.
	pl := newPlatform(t, "4f-0s", 1)
	cfg := DefaultConfig(ParallelSTW)
	cfg.HeapBytes = 10e6
	cfg.TriggerFraction = 0.9
	h := NewHeap(pl, cfg)
	ok := false
	pl.Env.Go("big", func(p *sim.Proc) {
		h.Alloc(p, 6e6)
		h.Alloc(p, 6e6) // 12 MB > capacity, but used (6MB) < trigger (9MB)
		ok = true
	})
	pl.Env.RunUntil(60 * simtime.Second)
	if !ok {
		t.Fatal("huge allocation deadlocked")
	}
}

func TestCollectingFlag(t *testing.T) {
	pl := newPlatform(t, "4f-0s", 1)
	cfg := DefaultConfig(ConcurrentGenerational)
	cfg.HeapBytes = 1e6
	h := NewHeap(pl, cfg)
	if h.Collecting() {
		t.Fatal("fresh heap collecting")
	}
	pl.Env.Go("a", func(p *sim.Proc) {
		h.Alloc(p, 0.7e6) // crosses 60% trigger
		if !h.Collecting() {
			t.Error("collection not started after crossing trigger")
		}
	})
	pl.Env.RunUntil(1 * simtime.Second)
	if h.Collecting() {
		t.Fatal("collection never finished")
	}
	if h.Stats().Collections != 1 {
		t.Fatalf("collections = %d, want 1", h.Stats().Collections)
	}
}
