package gc

import (
	"fmt"
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/sim"
	"asmp/internal/simtime"
	"asmp/internal/workload"
	"asmp/internal/xrand"
)

// TestHeapInvariantsProperty drives randomized allocation patterns
// through both collectors on random machines and checks the heap's
// global invariants at completion:
//
//   - occupancy never exceeds capacity (checked continuously by a probe),
//   - reclaimed bytes never exceed allocated bytes,
//   - every allocator finishes (no lost wakeups / deadlocks),
//   - stall accounting is non-negative and bounded by elapsed time.
func TestHeapInvariantsProperty(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := xrand.New(seed ^ 0xfeed)
			kind := ParallelSTW
			if rng.Bool(0.5) {
				kind = ConcurrentGenerational
			}
			cfgName := []string{"4f-0s", "2f-2s/8", "0f-4s/4", "1f-3s/8"}[rng.Intn(4)]
			pl := workload.NewPlatform(cpu.MustParseConfig(cfgName), sched.Defaults(sched.PolicyNaive), seed)
			defer pl.Close()

			cfg := DefaultConfig(kind)
			cfg.HeapBytes = rng.Range(5e6, 50e6)
			cfg.TriggerFraction = rng.Range(0.3, 0.8)
			cfg.LiveFraction = rng.Range(0.05, 0.6)
			h := NewHeap(pl, cfg)

			allocated := 0.0
			finished := 0
			nallocs := 3 + rng.Intn(5)
			perAlloc := 200 + rng.Intn(2000)
			for i := 0; i < nallocs; i++ {
				pl.Env.Go(fmt.Sprintf("alloc-%d", i), func(p *sim.Proc) {
					for j := 0; j < perAlloc; j++ {
						p.Compute(p.Rand().Range(1e3, 1e5))
						size := p.Rand().Range(1e3, cfg.HeapBytes/20)
						h.Alloc(p, size)
						allocated += size
					}
					finished++
				})
			}
			// Continuous occupancy probe.
			var probe func()
			violations := 0
			probe = func() {
				if h.Used() > cfg.HeapBytes+1e-6 {
					violations++
				}
				if finished < nallocs {
					pl.Env.After(simtime.Duration(0.01), probe)
				}
			}
			pl.Env.After(0, probe)

			pl.Env.RunUntil(10_000 * simtime.Second)
			if finished != nallocs {
				t.Fatalf("%d/%d allocators finished (deadlock?)", finished, nallocs)
			}
			if violations > 0 {
				t.Fatalf("heap exceeded capacity %d times", violations)
			}
			st := h.Stats()
			if st.ReclaimedBytes > allocated*(1+1e-9) {
				t.Fatalf("reclaimed %v > allocated %v", st.ReclaimedBytes, allocated)
			}
			if st.StallSeconds < 0 || st.StallSeconds > float64(pl.Env.Now())*float64(nallocs) {
				t.Fatalf("stall seconds %v out of range", st.StallSeconds)
			}
			// Heap accounting closes: used = allocated - reclaimed (up to
			// float summation drift over thousands of operations).
			want := allocated - st.ReclaimedBytes
			tol := 1e-9 * (allocated + 1)
			if want < h.Used()-tol || want > h.Used()+tol {
				t.Fatalf("used %v != allocated-reclaimed %v", h.Used(), want)
			}
		})
	}
}
