// Package h264 models the multithreaded H.264 encoder of §3.6: a main
// thread doing serial pre- and post-processing (2–5% of the cycles) and
// a team of encoder threads processing macro-blocks. Within a frame,
// macro-blocks form a wavefront — a block is ready once the blocks above
// and above-right of it are encoded — and across frames the encoder
// exploits temporal parallelism by keeping a small window of frames in
// flight.
//
// Because encoder threads self-schedule ready macro-blocks from a shared
// pool, fast cores automatically take more blocks: the workload is
// stable and predictably scalable under asymmetry, and a single fast
// core visibly helps the serial portions — the paper's example of
// asymmetry being *good* for performance.
package h264

import (
	"fmt"

	"asmp/internal/cpu"
	"asmp/internal/sim"
	"asmp/internal/simtime"
	"asmp/internal/workload"
	"asmp/internal/xrand"
)

// Options parameterises an encoding run.
type Options struct {
	// Frames is the number of video frames to encode.
	Frames int
	// MBCols and MBRows give the macro-block grid per frame.
	MBCols, MBRows int
	// MBCycles is the mean encoding cost per macro-block.
	MBCycles float64
	// MBCV is the content-driven spread of block cost. Costs are a
	// deterministic property of the (synthetic) video, not of the run.
	MBCV float64
	// PreCycles and PostCycles are the main thread's serial work per
	// frame.
	PreCycles, PostCycles float64
	// EncoderThreads is the worker-team size (the paper's encoder uses
	// four encoding threads plus the main thread).
	EncoderThreads int
	// FramesInFlight bounds temporal parallelism.
	FramesInFlight int
	// MemFraction is the share of block time stalled on memory.
	MemFraction float64
	// PrePostMemFraction is the share of the main thread's serial work
	// stalled on memory and I/O (reading raw frames, writing the
	// bitstream) — dominant in practice, which is why the main thread's
	// placement barely matters.
	PrePostMemFraction float64
	// ContentSeed selects the synthetic video content (fixed per study,
	// so block costs are identical across runs and machines).
	ContentSeed uint64
}

// withDefaults fills unset fields with the study's standard values.
func (o Options) withDefaults() Options {
	if o.Frames == 0 {
		o.Frames = 40
	}
	if o.MBCols == 0 {
		o.MBCols = 11
	}
	if o.MBRows == 0 {
		o.MBRows = 9
	}
	if o.MBCycles == 0 {
		o.MBCycles = 6e6
	}
	if o.MBCV == 0 {
		o.MBCV = 0.25
	}
	if o.PreCycles == 0 {
		o.PreCycles = 8e6
	}
	if o.PostCycles == 0 {
		o.PostCycles = 12e6
	}
	if o.EncoderThreads == 0 {
		o.EncoderThreads = 4
	}
	if o.FramesInFlight == 0 {
		o.FramesInFlight = 2
	}
	if o.MemFraction == 0 {
		o.MemFraction = 0.2
	}
	if o.PrePostMemFraction == 0 {
		o.PrePostMemFraction = 0.7
	}
	if o.ContentSeed == 0 {
		o.ContentSeed = 42
	}
	return o
}

// Benchmark is the H.264 encoder workload.
type Benchmark struct {
	opt Options
}

// New returns an encoder workload with the given options.
func New(opt Options) *Benchmark { return &Benchmark{opt: opt.withDefaults()} }

// Name implements workload.Workload.
func (b *Benchmark) Name() string { return "h264" }

// Identity implements workload.Identifier.
func (b *Benchmark) Identity() string {
	return fmt.Sprintf("h264|%+v", b.opt)
}

// Options returns the resolved options.
func (b *Benchmark) Options() Options { return b.opt }

// mb identifies one macro-block of one frame.
type mb struct {
	frame, row, col int
}

// blockCost returns the deterministic encoding cost of a block — a
// property of the video content, identical across runs and machines.
func (b *Benchmark) blockCost(x mb) float64 {
	o := b.opt
	h := o.ContentSeed
	h = h*1000003 + uint64(x.frame)
	h = h*1000003 + uint64(x.row)
	h = h*1000003 + uint64(x.col)
	return xrand.New(h).LogNormal(o.MBCycles, o.MBCV)
}

// Run implements workload.Workload. The primary metric is the encoding
// runtime in seconds (lower is better).
func (b *Benchmark) Run(pl *workload.Platform) workload.Result {
	o := b.opt
	env := pl.Env

	type frameState struct {
		remaining int
		pending   map[mb]int // unresolved dependencies per block
		done      *sim.WaitGroup
	}
	frames := map[int]*frameState{}
	ready := sim.NewQueue[mb](env)

	// deps returns the number of intra-frame dependencies of a block:
	// the block above and the block above-right.
	deps := func(x mb) int {
		if x.row == 0 {
			return 0
		}
		if x.col == o.MBCols-1 {
			return 1
		}
		return 2
	}

	submit := func(f int) *frameState {
		st := &frameState{
			remaining: o.MBRows * o.MBCols,
			pending:   map[mb]int{},
			done:      sim.NewWaitGroup(env),
		}
		st.done.Add(1)
		frames[f] = st
		for r := 0; r < o.MBRows; r++ {
			for c := 0; c < o.MBCols; c++ {
				x := mb{f, r, c}
				if d := deps(x); d == 0 {
					ready.Put(x)
				} else {
					st.pending[x] = d
				}
			}
		}
		return st
	}

	// complete resolves the dependents of a finished block.
	complete := func(x mb) {
		st := frames[x.frame]
		st.remaining--
		if st.remaining == 0 {
			st.done.Done()
			return
		}
		// Down-left and down: the blocks that depend on x.
		for _, y := range []mb{
			{x.frame, x.row + 1, x.col - 1},
			{x.frame, x.row + 1, x.col},
		} {
			if y.row >= o.MBRows || y.col < 0 {
				continue
			}
			st.pending[y]--
			if st.pending[y] == 0 {
				delete(st.pending, y)
				ready.Put(y)
			}
		}
	}

	for i := 0; i < o.EncoderThreads; i++ {
		env.Go(fmt.Sprintf("encoder-%d", i), func(p *sim.Proc) {
			for {
				x, ok := ready.Get(p)
				if !ok {
					return
				}
				cost := b.blockCost(x)
				p.ComputeMem(cost*(1-o.MemFraction),
					simtime.Duration(cost*o.MemFraction/cpu.BaseHz))
				complete(x)
			}
		})
	}

	serial := func(p *sim.Proc, cycles float64) {
		p.ComputeMem(cycles*(1-o.PrePostMemFraction),
			simtime.Duration(cycles*o.PrePostMemFraction/cpu.BaseHz))
	}
	var finish simtime.Time
	env.Go("main", func(p *sim.Proc) {
		inFlight := []*frameState{}
		for f := 0; f < o.Frames; f++ {
			serial(p, o.PreCycles)
			inFlight = append(inFlight, submit(f))
			if len(inFlight) > o.FramesInFlight {
				inFlight[0].done.Wait(p)
				inFlight = inFlight[1:]
				serial(p, o.PostCycles)
			}
		}
		for _, st := range inFlight {
			st.done.Wait(p)
			serial(p, o.PostCycles)
		}
		ready.Close()
		finish = p.Now()
	})
	env.Run()

	total := float64(o.Frames)
	res := workload.Result{
		Metric:         "encode runtime (s)",
		Value:          float64(finish),
		HigherIsBetter: false,
	}
	res.AddExtra("fps", total/float64(finish))
	return res
}

func init() {
	workload.Register("h264", func() workload.Workload { return New(Options{}) })
}
