package h264

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/stats"
	"asmp/internal/workload"
)

func runOnce(t *testing.T, b *Benchmark, cfgName string, seed uint64) workload.Result {
	t.Helper()
	pl := workload.NewPlatform(cpu.MustParseConfig(cfgName), sched.Defaults(sched.PolicyNaive), seed)
	defer pl.Close()
	return b.Run(pl)
}

func sample(t *testing.T, b *Benchmark, cfgName string, runs int) *stats.Sample {
	t.Helper()
	s := &stats.Sample{}
	for i := 0; i < runs; i++ {
		s.Add(runOnce(t, b, cfgName, uint64(60+i)).Value)
	}
	return s
}

func TestDefaultsAndRegistry(t *testing.T) {
	b := New(Options{})
	o := b.Options()
	if o.Frames == 0 || o.EncoderThreads != 4 || o.FramesInFlight == 0 {
		t.Fatalf("defaults: %+v", o)
	}
	if b.Name() != "h264" {
		t.Fatal("name")
	}
	if _, err := workload.New("h264"); err != nil {
		t.Fatal(err)
	}
}

func TestContentDeterministic(t *testing.T) {
	b := New(Options{})
	x := mb{3, 2, 1}
	if b.blockCost(x) != b.blockCost(x) {
		t.Fatal("block cost not deterministic")
	}
	if b.blockCost(mb{3, 2, 1}) == b.blockCost(mb{3, 2, 2}) {
		t.Fatal("neighbouring blocks should differ in cost")
	}
}

func TestStableAcrossRunsEverywhere(t *testing.T) {
	// Figure 9(a): all configurations show stability across runs.
	b := New(Options{})
	for _, cfg := range []string{"4f-0s", "2f-2s/8", "1f-3s/8"} {
		if cov := sample(t, b, cfg, 4).CoV(); cov > 0.02 {
			t.Errorf("%s CoV %.4f, want < 0.02", cfg, cov)
		}
	}
}

func TestPredictablyScalable(t *testing.T) {
	// Runtime tracks compute power monotonically across the sweep.
	b := New(Options{})
	prev := 0.0
	for _, cfg := range []string{"4f-0s", "3f-1s/8", "2f-2s/8", "1f-3s/8", "0f-4s/8"} {
		v := sample(t, b, cfg, 1).Mean()
		if v <= prev {
			t.Fatalf("runtime should grow as power shrinks: %s gave %.2f after %.2f", cfg, v, prev)
		}
		prev = v
	}
}

func TestAsymmetryHelps(t *testing.T) {
	// §3.6: one fast core makes 1f-3s/8 significantly better than the
	// all-slow 0f-4s/4 and 0f-4s/8 systems.
	b := New(Options{})
	oneFast := sample(t, b, "1f-3s/8", 1).Mean()
	allSlow4 := sample(t, b, "0f-4s/4", 1).Mean()
	allSlow8 := sample(t, b, "0f-4s/8", 1).Mean()
	if oneFast >= allSlow4 {
		t.Fatalf("1f-3s/8 (%.2fs) should beat 0f-4s/4 (%.2fs)", oneFast, allSlow4)
	}
	if oneFast >= allSlow8 {
		t.Fatalf("1f-3s/8 (%.2fs) should beat 0f-4s/8 (%.2fs)", oneFast, allSlow8)
	}
}

func TestReplacingFastCoreCosts(t *testing.T) {
	// §3.6: going 4f-0s -> 3f-1s/8 slows things down noticeably because
	// all threads eventually wait on the slow core's blocks.
	b := New(Options{})
	f4 := sample(t, b, "4f-0s", 1).Mean()
	f3 := sample(t, b, "3f-1s/8", 1).Mean()
	if f3 <= f4*1.05 {
		t.Fatalf("3f-1s/8 (%.2fs) should be clearly slower than 4f-0s (%.2fs)", f3, f4)
	}
}

func TestFPSExtra(t *testing.T) {
	res := runOnce(t, New(Options{}), "4f-0s", 1)
	if res.Extra("fps") <= 0 {
		t.Fatal("fps extra missing")
	}
	if res.HigherIsBetter {
		t.Fatal("runtime metric direction wrong")
	}
}

func TestWavefrontCompletes(t *testing.T) {
	// Small frame, one thread: every block must still encode exactly
	// once (dependency bookkeeping sanity).
	b := New(Options{Frames: 3, MBCols: 4, MBRows: 4, EncoderThreads: 1})
	res := runOnce(t, b, "4f-0s", 1)
	if res.Value <= 0 {
		t.Fatal("no runtime")
	}
}

func TestDeterministic(t *testing.T) {
	b := New(Options{})
	if a, c := runOnce(t, b, "2f-2s/8", 9).Value, runOnce(t, b, "2f-2s/8", 9).Value; a != c {
		t.Fatalf("same seed: %v vs %v", a, c)
	}
}
