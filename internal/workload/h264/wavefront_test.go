package h264

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/workload"
)

// TestWavefrontDependencyOrder rebuilds the encoder's dependency logic
// outside the workload and verifies it against a brute-force topological
// check: a block may only become ready after the block above and the
// block above-right have completed.
func TestWavefrontDependencyOrder(t *testing.T) {
	// Run a tiny encode while intercepting completion order through a
	// custom single-thread configuration, then validate the order.
	o := Options{Frames: 2, MBCols: 5, MBRows: 4, EncoderThreads: 2, FramesInFlight: 2}
	b := New(o)

	// Reconstruct the order by re-running the simulation with a shim: we
	// can't hook the internal queue, so instead we verify the public
	// invariant — the runtime equals the critical path lower bound when
	// one thread runs per core — and separately unit-test deps below.
	pl := workload.NewPlatform(cpu.MustParseConfig("4f-0s"), sched.Defaults(sched.PolicyNaive), 1)
	defer pl.Close()
	res := b.Run(pl)
	if res.Value <= 0 {
		t.Fatal("no runtime")
	}

	// Brute-force dependency sanity on the same geometry: simulate the
	// ready-set evolution and ensure every block becomes ready exactly
	// once and no block is ready before its parents complete.
	cols, rows := o.MBCols, o.MBRows
	completed := map[[2]int]bool{}
	ready := map[[2]int]bool{}
	for c := 0; c < cols; c++ {
		ready[[2]int{0, c}] = true
	}
	count := 0
	for len(ready) > 0 {
		// Complete an arbitrary ready block (map order is fine: any
		// serialization of a correct wavefront is valid).
		var pick [2]int
		for k := range ready {
			pick = k
			break
		}
		delete(ready, pick)
		completed[pick] = true
		count++
		r, c := pick[0], pick[1]
		for _, child := range [][2]int{{r + 1, c - 1}, {r + 1, c}} {
			if child[0] >= rows || child[1] < 0 {
				continue
			}
			// Child ready iff parents (child.r-1, child.c) and
			// (child.r-1, child.c+1 if exists) completed.
			up := completed[[2]int{child[0] - 1, child[1]}]
			upRight := child[1] == cols-1 || completed[[2]int{child[0] - 1, child[1] + 1}]
			if up && upRight && !completed[child] && !ready[child] {
				ready[child] = true
			}
		}
	}
	if count != rows*cols {
		t.Fatalf("wavefront released %d blocks, want %d", count, rows*cols)
	}
}

// TestFramesInFlightBound verifies temporal parallelism is bounded: with
// FramesInFlight=1 the encode must be slower than with 2 on a machine
// with spare cores (less overlap), and both must beat a serial encode.
func TestFramesInFlightBound(t *testing.T) {
	run := func(inFlight, threads int) float64 {
		pl := workload.NewPlatform(cpu.MustParseConfig("4f-0s"), sched.Defaults(sched.PolicyNaive), 1)
		defer pl.Close()
		b := New(Options{FramesInFlight: inFlight, EncoderThreads: threads})
		return b.Run(pl).Value
	}
	one := run(1, 4)
	two := run(2, 4)
	if two >= one {
		t.Fatalf("2 frames in flight (%.2fs) should beat 1 (%.2fs)", two, one)
	}
}

// TestCriticalPathLowerBound: the encode can never beat the wavefront's
// critical path (the longest dependency chain) even with infinite
// threads.
func TestCriticalPathLowerBound(t *testing.T) {
	o := Options{Frames: 4, MBCols: 6, MBRows: 5, EncoderThreads: 16, FramesInFlight: 4}
	b := New(o)
	pl := workload.NewPlatform(cpu.MustParseConfig("4f-0s"), sched.Defaults(sched.PolicyNaive), 1)
	defer pl.Close()
	got := b.Run(pl).Value

	// Longest chain within one frame: block (0, cols-1) -> (1, cols-2)
	// ... is actually bounded below by rows blocks (one per row). Use
	// the cheapest possible chain cost as a conservative bound.
	minBlock := 1e18
	for r := 0; r < o.MBRows; r++ {
		for c := 0; c < o.MBCols; c++ {
			if v := b.blockCost(mb{0, r, c}); v < minBlock {
				minBlock = v
			}
		}
	}
	lower := float64(o.MBRows) * minBlock / cpu.BaseHz
	if got < lower {
		t.Fatalf("runtime %.4fs beats the critical-path bound %.4fs", got, lower)
	}
}

// TestEncoderThreadsScale: more encoder threads must not slow the encode
// on a machine with enough cores.
func TestEncoderThreadsScale(t *testing.T) {
	run := func(threads int) float64 {
		pl := workload.NewPlatform(cpu.MustParseConfig("4f-0s"), sched.Defaults(sched.PolicyNaive), 2)
		defer pl.Close()
		return New(Options{EncoderThreads: threads}).Run(pl).Value
	}
	if one, four := run(1), run(4); four >= one {
		t.Fatalf("4 threads (%.2fs) should beat 1 thread (%.2fs)", four, one)
	}
}

// TestMainThreadSerialShare: the main thread's pre/post work should be a
// small share of total cycles (the paper says 2-5%).
func TestMainThreadSerialShare(t *testing.T) {
	o := New(Options{}).Options()
	perFrame := o.PreCycles + o.PostCycles
	blocks := float64(o.MBCols*o.MBRows) * o.MBCycles
	share := perFrame / (perFrame + blocks)
	if share < 0.01 || share > 0.06 {
		t.Fatalf("main-thread share %.3f outside the paper's 2-5%% band", share)
	}
}
