package jappserver

import (
	"testing"

	"asmp/internal/sched"
)

// TestRateNeverExceedsSpecified: the feedback loop may reduce the
// injection rate but must never push it above the specified one.
func TestRateNeverExceedsSpecified(t *testing.T) {
	b := New(Options{})
	for _, cfg := range []string{"4f-0s", "2f-2s/8", "0f-4s/8"} {
		res := runOnce(t, b, cfg, sched.PolicyNaive, 3)
		if got := res.Extra("final_rate"); got > b.Options().InjectionRate+1e-9 {
			t.Errorf("%s: final rate %.1f above specified %.1f", cfg, got, b.Options().InjectionRate)
		}
		// Achieved rate can exceed spec only by the arrival jitter (10%).
		if got := res.Extra("achieved_injection_rate"); got > b.Options().InjectionRate*1.1 {
			t.Errorf("%s: achieved rate %.1f implausibly above specified", cfg, got)
		}
	}
}

// TestFeedbackConvergesToCapacity: on a machine that cannot sustain the
// specified rate, the achieved throughput converges near the machine's
// capacity (total power divided by per-order cost).
func TestFeedbackConvergesToCapacity(t *testing.T) {
	b := New(Options{})
	o := b.Options()
	perOrder := o.NewOrderCycles + o.ManufacturingCycles
	for _, tc := range []struct {
		cfg   string
		power float64
	}{
		{"0f-4s/4", 1.0},
		{"1f-3s/4", 1.75},
		{"2f-2s/8", 2.25},
	} {
		res := runOnce(t, b, tc.cfg, sched.PolicyNaive, 5)
		capacity := tc.power * 2.8e9 / perOrder
		got := res.Value
		if got < 0.7*capacity || got > 1.05*capacity {
			t.Errorf("%s: throughput %.0f should sit near capacity %.0f", tc.cfg, got, capacity)
		}
	}
}

// TestHigherRatesRaiseResponseTimes: at a fixed configuration, raising
// the injection rate toward capacity raises the response-time tail
// (Figure 3(b)'s x-axis behaviour).
func TestHigherRatesRaiseResponseTimes(t *testing.T) {
	lo := New(Options{InjectionRate: 250})
	hi := New(Options{InjectionRate: 320})
	l := runOnce(t, lo, "3f-1s/8", sched.PolicyNaive, 4)
	h := runOnce(t, hi, "3f-1s/8", sched.PolicyNaive, 4)
	if h.Extra("resp_p90_ms") <= l.Extra("resp_p90_ms")*0.8 {
		t.Errorf("p90 at rate 320 (%.1fms) should not be far below rate 250 (%.1fms)",
			h.Extra("resp_p90_ms"), l.Extra("resp_p90_ms"))
	}
	// Both sustain their specified rates on this configuration.
	if l.Value < 240 || h.Value < 300 {
		t.Errorf("rates not sustained: %.0f@250 %.0f@320", l.Value, h.Value)
	}
}

// TestMoreWorkersAbsorbBurstiness: a larger container pool lowers the
// response-time tail at the same rate and machine.
func TestMoreWorkersAbsorbBurstiness(t *testing.T) {
	small := New(Options{Workers: 4})
	large := New(Options{Workers: 24})
	s := runOnce(t, small, "4f-0s", sched.PolicyNaive, 6)
	l := runOnce(t, large, "4f-0s", sched.PolicyNaive, 6)
	if l.Extra("resp_max_ms") > s.Extra("resp_max_ms")*1.5 {
		t.Errorf("large pool max response %.1fms should not exceed small pool %.1fms by 1.5x",
			l.Extra("resp_max_ms"), s.Extra("resp_max_ms"))
	}
}

// TestAwareKernelMakesNoDifference: the paper's Table 1 row — jAppServer
// is already stable; the kernel fix neither helps nor harms throughput.
func TestAwareKernelMakesNoDifference(t *testing.T) {
	b := New(Options{})
	naive := runOnce(t, b, "2f-2s/8", sched.PolicyNaive, 7).Value
	aware := runOnce(t, b, "2f-2s/8", sched.PolicyAsymmetryAware, 7).Value
	if aware < naive*0.93 || aware > naive*1.07 {
		t.Errorf("aware kernel changed jAppServer throughput %.0f -> %.0f", naive, aware)
	}
}
