// Package jappserver models SPECjAppServer2002 (§3.2 of the paper): a
// three-tier J2EE benchmark whose driver injects orders at a specified
// rate but — crucially — scales the rate back when the server misses its
// response-time requirement. That feedback loop is why the paper finds
// the workload stable under performance asymmetry: the application
// adapts to whatever compute power it actually gets.
//
// Only the middle tier (the jAppServer) runs on the simulated machine,
// matching the paper's setup where driver and database ran on separate
// boxes that were never the bottleneck. An injected order produces one
// customer-domain (NewOrder) transaction and one manufacturing-domain
// work order, each processed by a pool of container threads.
package jappserver

import (
	"fmt"

	"asmp/internal/sim"
	"asmp/internal/simtime"
	"asmp/internal/stats"
	"asmp/internal/workload"
)

// Options parameterises a SPECjAppServer run.
type Options struct {
	// InjectionRate is the specified orders-per-second rate (the paper
	// sweeps 250, 290, 320).
	InjectionRate float64
	// Workers is the container thread-pool size.
	Workers int
	// NewOrderCycles and ManufacturingCycles are the per-transaction
	// costs in fast-core cycles.
	NewOrderCycles      float64
	ManufacturingCycles float64
	// CostCV is the relative spread of transaction cost.
	CostCV float64
	// ResponseLimit is the per-transaction response-time requirement the
	// driver enforces through its feedback loop.
	ResponseLimit simtime.Duration
	// FeedbackInterval is how often the driver re-evaluates the rate.
	FeedbackInterval simtime.Duration
	// DisableFeedback turns the driver's adaptation off (for the ablation
	// study: without feedback the workload behaves like an overloaded
	// open system).
	DisableFeedback bool
	// RampUp and Window delimit the measurement interval.
	RampUp simtime.Duration
	Window simtime.Duration
}

// withDefaults fills unset fields with the study's standard values.
func (o Options) withDefaults() Options {
	if o.InjectionRate == 0 {
		o.InjectionRate = 320
	}
	if o.Workers == 0 {
		o.Workers = 12
	}
	if o.NewOrderCycles == 0 {
		o.NewOrderCycles = 10e6
	}
	if o.ManufacturingCycles == 0 {
		o.ManufacturingCycles = 17e6
	}
	if o.CostCV == 0 {
		o.CostCV = 0.2
	}
	if o.ResponseLimit == 0 {
		o.ResponseLimit = 500 * simtime.Millisecond
	}
	if o.FeedbackInterval == 0 {
		o.FeedbackInterval = 250 * simtime.Millisecond
	}
	if o.RampUp == 0 {
		o.RampUp = 3 * simtime.Second
	}
	if o.Window == 0 {
		o.Window = 6 * simtime.Second
	}
	return o
}

// Benchmark is the SPECjAppServer workload.
type Benchmark struct {
	opt Options
}

// New returns a SPECjAppServer workload with the given options.
func New(opt Options) *Benchmark { return &Benchmark{opt: opt.withDefaults()} }

// Name implements workload.Workload.
func (b *Benchmark) Name() string { return "specjappserver" }

// Identity implements workload.Identifier.
func (b *Benchmark) Identity() string {
	return fmt.Sprintf("specjappserver|%+v", b.opt)
}

// Options returns the resolved options.
func (b *Benchmark) Options() Options { return b.opt }

// txn is one transaction flowing through the container.
type txn struct {
	cycles   float64
	injected simtime.Time
	mfg      bool
}

// Run implements workload.Workload. The primary metric is manufacturing
// throughput; extras carry the NewOrder throughput, the achieved
// injection rate and the response-time distribution the paper plots in
// Figure 3(b).
func (b *Benchmark) Run(pl *workload.Platform) workload.Result {
	o := b.opt
	env := pl.Env
	start := o.RampUp
	end := o.RampUp + o.Window

	queue := sim.NewQueue[txn](env)
	rng := env.Rand().Split()

	var (
		mfgDone, newDone int
		respSample       = &stats.Sample{}
		recentDone       int
		recentViolations int
		rate             = o.InjectionRate
		injectedInWindow int
	)

	// Container worker pool.
	for i := 0; i < o.Workers; i++ {
		env.Go(fmt.Sprintf("ejb-worker-%d", i), func(p *sim.Proc) {
			for {
				t, ok := queue.Get(p)
				if !ok {
					return
				}
				p.Compute(p.Rand().LogNormal(t.cycles, o.CostCV))
				now := p.Now()
				resp := now - t.injected
				recentDone++
				if resp > o.ResponseLimit {
					recentViolations++
				}
				if now >= start && now < end {
					if t.mfg {
						mfgDone++
						respSample.Add(float64(resp))
					} else {
						newDone++
					}
				}
			}
		})
	}

	// Driver: open-loop injection with feedback. Each order yields one
	// NewOrder and one manufacturing transaction.
	var inject func()
	inject = func() {
		now := env.Now()
		if now >= end {
			return
		}
		if now >= start && now < end {
			injectedInWindow++
		}
		queue.Put(txn{cycles: o.NewOrderCycles, injected: now, mfg: false})
		queue.Put(txn{cycles: o.ManufacturingCycles, injected: now, mfg: true})
		gap := simtime.Duration(1/rate) * simtime.Duration(rng.Range(0.9, 1.1))
		env.After(gap, inject)
	}
	env.After(0, inject)

	// Feedback controller: SPEC's conformance loop. When the server
	// cannot keep up (backlog grows or responses blow the limit) the
	// driver backs the rate down toward the measured completion rate;
	// when it is comfortably keeping up, the rate recovers toward the
	// specified one.
	var control func()
	control = func() {
		if env.Now() >= end {
			return
		}
		if !o.DisableFeedback {
			completionRate := float64(recentDone) / 2 / float64(o.FeedbackInterval)
			backlog := queue.Len()
			overloaded := backlog > 4*o.Workers ||
				(recentDone > 0 && float64(recentViolations)/float64(recentDone) > 0.1)
			switch {
			case overloaded:
				target := completionRate * 0.95
				if target < 1 {
					target = 1
				}
				if target < rate {
					rate = target
				} else {
					rate *= 0.9
				}
			case rate < o.InjectionRate:
				rate *= 1.1
				if rate > o.InjectionRate {
					rate = o.InjectionRate
				}
			}
		}
		recentDone, recentViolations = 0, 0
		env.After(o.FeedbackInterval, control)
	}
	env.After(o.FeedbackInterval, control)

	env.RunUntil(end)

	res := workload.Result{
		Metric:         "manufacturing throughput (txn/s)",
		Value:          float64(mfgDone) / float64(o.Window),
		HigherIsBetter: true,
	}
	res.AddExtra("neworder_tps", float64(newDone)/float64(o.Window))
	res.AddExtra("achieved_injection_rate", float64(injectedInWindow)/float64(o.Window))
	res.AddExtra("final_rate", rate)
	if respSample.N() > 0 {
		res.AddExtra("resp_avg_ms", respSample.Mean()*1e3)
		res.AddExtra("resp_p90_ms", respSample.Percentile(90)*1e3)
		res.AddExtra("resp_max_ms", respSample.Max()*1e3)
	}
	return res
}

func init() {
	workload.Register("specjappserver", func() workload.Workload { return New(Options{}) })
}
