package jappserver

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/stats"
	"asmp/internal/workload"
)

func runOnce(t *testing.T, b *Benchmark, cfgName string, policy sched.Policy, seed uint64) workload.Result {
	t.Helper()
	pl := workload.NewPlatform(cpu.MustParseConfig(cfgName), sched.Defaults(policy), seed)
	defer pl.Close()
	return b.Run(pl)
}

func sample(t *testing.T, b *Benchmark, cfgName string, runs int) *stats.Sample {
	t.Helper()
	s := &stats.Sample{}
	for i := 0; i < runs; i++ {
		s.Add(runOnce(t, b, cfgName, sched.PolicyNaive, uint64(500+i)).Value)
	}
	return s
}

func TestDefaults(t *testing.T) {
	b := New(Options{})
	o := b.Options()
	if o.InjectionRate != 320 || o.Workers == 0 || o.ResponseLimit == 0 {
		t.Fatalf("defaults: %+v", o)
	}
	if b.Name() != "specjappserver" {
		t.Fatal("name")
	}
}

func TestRegistered(t *testing.T) {
	if _, err := workload.New("specjappserver"); err != nil {
		t.Fatal(err)
	}
}

func TestFastConfigsSustainSpecifiedRate(t *testing.T) {
	// Figure 3(a): 4f-0s, 3f-1s/4 and 3f-1s/8 all sustain the specified
	// injection rate, so their throughput is (roughly) the same.
	b := New(Options{})
	var means []float64
	for _, cfg := range []string{"4f-0s", "3f-1s/4", "3f-1s/8"} {
		m := sample(t, b, cfg, 2).Mean()
		means = append(means, m)
		// Specified rate is 320 orders/s => ~320 manufacturing txn/s.
		if m < 280 || m > 360 {
			t.Errorf("%s throughput %.0f, want ~320", cfg, m)
		}
	}
	spread := (maxOf(means) - minOf(means)) / maxOf(means)
	if spread > 0.10 {
		t.Errorf("fast configs should have near-equal throughput; spread %.2f", spread)
	}
}

func TestSlowConfigsScaleDown(t *testing.T) {
	// The feedback loop reduces the achieved rate on weaker machines:
	// throughput tracks compute power instead of collapsing.
	b := New(Options{})
	half := sample(t, b, "0f-4s/4", 2).Mean()   // power 1.0
	eighth := sample(t, b, "0f-4s/8", 2).Mean() // power 0.5
	if half <= eighth {
		t.Fatal("0f-4s/4 should outperform 0f-4s/8")
	}
	// Power 1.0 should sustain roughly 2.8e9/27e6 ≈ 100 orders/s.
	if half < 60 || half > 140 {
		t.Errorf("0f-4s/4 throughput %.0f, want ~100", half)
	}
	if eighth < 25 || eighth > 75 {
		t.Errorf("0f-4s/8 throughput %.0f, want ~50", eighth)
	}
}

func TestStableUnderAsymmetry(t *testing.T) {
	// The paper's key jAppServer finding: predictable despite asymmetry,
	// thanks to the feedback loop.
	b := New(Options{})
	for _, cfg := range []string{"2f-2s/8", "1f-3s/8"} {
		s := sample(t, b, cfg, 4)
		if cov := s.CoV(); cov > 0.06 {
			t.Errorf("%s CoV = %.4f, want < 0.06 (feedback keeps it stable)", cfg, cov)
		}
	}
}

func TestResponseTimesReported(t *testing.T) {
	b := New(Options{})
	res := runOnce(t, b, "4f-0s", sched.PolicyNaive, 1)
	avg := res.Extra("resp_avg_ms")
	p90 := res.Extra("resp_p90_ms")
	max := res.Extra("resp_max_ms")
	if avg <= 0 || p90 < avg || max < p90 {
		t.Fatalf("response stats inconsistent: avg=%v p90=%v max=%v", avg, p90, max)
	}
	// Figure 3(b)'s observation: the 90th percentile sits close to the
	// average, far below the max.
	if p90 > 5*avg {
		t.Errorf("p90 %.1f too far above avg %.1f", p90, avg)
	}
}

func TestResponseTimesGrowAsPowerShrinks(t *testing.T) {
	b := New(Options{})
	fast := runOnce(t, b, "4f-0s", sched.PolicyNaive, 2).Extra("resp_avg_ms")
	slow := runOnce(t, b, "0f-4s/8", sched.PolicyNaive, 2).Extra("resp_avg_ms")
	if slow <= fast {
		t.Fatalf("avg response on 0f-4s/8 (%.1fms) should exceed 4f-0s (%.1fms)", slow, fast)
	}
}

func TestNewOrderTracksManufacturing(t *testing.T) {
	b := New(Options{})
	res := runOnce(t, b, "2f-2s/4", sched.PolicyNaive, 3)
	mfg := res.Value
	no := res.Extra("neworder_tps")
	if no < 0.8*mfg || no > 1.2*mfg {
		t.Fatalf("NewOrder %.0f should track manufacturing %.0f", no, mfg)
	}
}

func TestDisableFeedbackOverloads(t *testing.T) {
	// Ablation: without the feedback loop the server drowns on a weak
	// machine — response times explode relative to the adaptive run.
	adaptive := New(Options{})
	fixed := New(Options{DisableFeedback: true})
	a := runOnce(t, adaptive, "0f-4s/8", sched.PolicyNaive, 4)
	f := runOnce(t, fixed, "0f-4s/8", sched.PolicyNaive, 4)
	if f.Extra("resp_max_ms") < 3*a.Extra("resp_max_ms") {
		t.Fatalf("without feedback max response %.0fms should dwarf adaptive %.0fms",
			f.Extra("resp_max_ms"), a.Extra("resp_max_ms"))
	}
	// Achieved injection rate stays at spec without feedback.
	if got := f.Extra("achieved_injection_rate"); got < 280 {
		t.Fatalf("fixed driver injected %.0f/s, want ~320", got)
	}
}

func TestDeterministic(t *testing.T) {
	b := New(Options{})
	a := runOnce(t, b, "2f-2s/8", sched.PolicyNaive, 9).Value
	c := runOnce(t, b, "2f-2s/8", sched.PolicyNaive, 9).Value
	if a != c {
		t.Fatalf("same seed: %v vs %v", a, c)
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
