package jbb

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/stats"
	"asmp/internal/workload"
	"asmp/internal/workload/gc"
)

// runOnce executes one SPECjbb run and returns throughput.
func runOnce(t *testing.T, cfgName string, policy sched.Policy, kind gc.Kind, warehouses int, seed uint64) float64 {
	t.Helper()
	cfg := cpu.MustParseConfig(cfgName)
	pl := workload.NewPlatform(cfg, sched.Defaults(policy), seed)
	defer pl.Close()
	b := New(Options{Warehouses: warehouses, GC: kind})
	return b.Run(pl).Value
}

func sample(t *testing.T, cfgName string, policy sched.Policy, kind gc.Kind, warehouses, runs int) *stats.Sample {
	t.Helper()
	s := &stats.Sample{}
	for i := 0; i < runs; i++ {
		s.Add(runOnce(t, cfgName, policy, kind, warehouses, uint64(1000+i)))
	}
	return s
}

func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration exploration")
	}
	for _, cfg := range []string{"4f-0s", "3f-1s/8", "2f-2s/8", "0f-4s/4", "0f-4s/8"} {
		for _, kind := range []gc.Kind{gc.ParallelSTW, gc.ConcurrentGenerational} {
			s := sample(t, cfg, sched.PolicyNaive, kind, 12, 5)
			t.Logf("%-8s gc=%-10s naive: mean=%8.0f cov=%.4f min=%8.0f max=%8.0f",
				cfg, kind, s.Mean(), s.CoV(), s.Min(), s.Max())
		}
	}
	s := sample(t, "2f-2s/8", sched.PolicyAsymmetryAware, gc.ConcurrentGenerational, 12, 5)
	t.Logf("2f-2s/8 concurrent AWARE: mean=%8.0f cov=%.4f", s.Mean(), s.CoV())
}
