// Package jbb models SPECjbb2000 (§3.1 of the paper): a Java
// business-transaction server where each warehouse is served by one
// thread with no think time, running inside a managed runtime whose
// garbage collector shares the machine with the application.
//
// The model's fidelity targets the paper's mechanisms, not Java
// semantics: warehouse threads burn a lognormally distributed number of
// cycles per transaction and allocate heap memory; the collector (from
// the gc package) either pauses everyone in parallel or runs as one
// ordinary thread whose OS placement decides whether reclamation keeps
// up with allocation.
package jbb

import (
	"fmt"

	"asmp/internal/sim"
	"asmp/internal/simtime"
	"asmp/internal/workload"
	"asmp/internal/workload/gc"
)

// JVM selects the modelled virtual machine.
type JVM int

const (
	// JRockit models BEA WebLogic JRockit 8.1.
	JRockit JVM = iota
	// HotSpot models Sun HotSpot 1.4.2: slightly slower transaction code
	// and a less efficient collector, giving the higher absolute variance
	// the paper reports in Figure 1(a).
	HotSpot
)

// String implements fmt.Stringer.
func (j JVM) String() string {
	switch j {
	case JRockit:
		return "jrockit"
	case HotSpot:
		return "hotspot"
	default:
		return fmt.Sprintf("JVM(%d)", int(j))
	}
}

// Options parameterises a SPECjbb run.
type Options struct {
	// Warehouses is the number of warehouse threads (the concurrency
	// knob swept in Figure 1).
	Warehouses int
	// JVM selects the virtual-machine model.
	JVM JVM
	// GC selects the collector.
	GC gc.Kind
	// RampUp is discarded warm-up time before measurement.
	RampUp simtime.Duration
	// Window is the measurement interval.
	Window simtime.Duration
	// TxnCycles is the mean transaction cost in fast-core cycles.
	TxnCycles float64
	// TxnCV is the relative spread of transaction cost.
	TxnCV float64
	// AllocPerTxn is the heap allocation per transaction in bytes.
	AllocPerTxn float64
	// Heap overrides the collector configuration when non-nil.
	Heap *gc.Config
}

// Defaults fills unset fields with the study's standard values.
func (o Options) withDefaults() Options {
	if o.Warehouses == 0 {
		o.Warehouses = 8
	}
	if o.RampUp == 0 {
		o.RampUp = 1 * simtime.Second
	}
	if o.Window == 0 {
		o.Window = 4 * simtime.Second
	}
	if o.TxnCycles == 0 {
		o.TxnCycles = 1e6
		if o.JVM == HotSpot {
			o.TxnCycles = 1.15e6
		}
	}
	if o.TxnCV == 0 {
		o.TxnCV = 0.3
	}
	if o.AllocPerTxn == 0 {
		o.AllocPerTxn = 50e3
	}
	return o
}

// heapConfig returns the collector configuration implied by the options.
func (o Options) heapConfig() gc.Config {
	if o.Heap != nil {
		return *o.Heap
	}
	cfg := gc.DefaultConfig(o.GC)
	if o.JVM == HotSpot {
		// HotSpot 1.4.2's collector works harder per byte and starts
		// later, making it more sensitive to where the OS puts it.
		cfg.CyclesPerByte = 2.5
		cfg.TriggerFraction = 0.5
	}
	return cfg
}

// Benchmark is the SPECjbb workload.
type Benchmark struct {
	opt Options
}

// New returns a SPECjbb workload with the given options.
func New(opt Options) *Benchmark { return &Benchmark{opt: opt.withDefaults()} }

// Name implements workload.Workload.
func (b *Benchmark) Name() string { return "specjbb" }

// Identity implements workload.Identifier. The Heap pointer is rendered
// via the resolved collector configuration, never its address.
func (b *Benchmark) Identity() string {
	o := b.opt
	o.Heap = nil
	//asmp:allow purity the Heap pointer field is nilled on the local copy above, so %+v prints "heap=<nil>" — the resolved config is appended separately by value
	return fmt.Sprintf("specjbb|%+v|heap=%+v", o, b.opt.heapConfig())
}

// Options returns the resolved options.
func (b *Benchmark) Options() Options { return b.opt }

// Run implements workload.Workload. The primary metric is measured
// throughput in transactions per second over the measurement window.
func (b *Benchmark) Run(pl *workload.Platform) workload.Result {
	o := b.opt
	heap := gc.NewHeap(pl, o.heapConfig())
	start := o.RampUp
	end := o.RampUp + o.Window

	completed := 0
	perWarehouse := make([]int, o.Warehouses)
	for w := 0; w < o.Warehouses; w++ {
		w := w
		pl.Env.Go(fmt.Sprintf("warehouse-%d", w), func(p *sim.Proc) {
			for {
				p.Compute(p.Rand().LogNormal(o.TxnCycles, o.TxnCV))
				heap.Alloc(p, o.AllocPerTxn)
				if now := p.Now(); now >= start && now < end {
					completed++
					perWarehouse[w]++
				}
			}
		})
	}
	pl.Env.RunUntil(end)

	res := workload.Result{
		Metric:         "throughput (txn/s)",
		Value:          float64(completed) / float64(o.Window),
		HigherIsBetter: true,
	}
	gs := heap.Stats()
	res.AddExtra("gc_collections", float64(gs.Collections))
	res.AddExtra("gc_stall_seconds", gs.StallSeconds)
	res.AddExtra("gc_stall_events", float64(gs.StallEvents))
	minW, maxW := perWarehouse[0], perWarehouse[0]
	for _, c := range perWarehouse[1:] {
		if c < minW {
			minW = c
		}
		if c > maxW {
			maxW = c
		}
	}
	res.AddExtra("warehouse_min_txn", float64(minW))
	res.AddExtra("warehouse_max_txn", float64(maxW))
	return res
}

func init() {
	workload.Register("specjbb", func() workload.Workload {
		return New(Options{GC: gc.ConcurrentGenerational})
	})
}
