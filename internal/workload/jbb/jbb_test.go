package jbb

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/workload"
	"asmp/internal/workload/gc"
)

func TestOptionsDefaults(t *testing.T) {
	b := New(Options{})
	o := b.Options()
	if o.Warehouses == 0 || o.Window == 0 || o.TxnCycles == 0 || o.AllocPerTxn == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	if b.Name() != "specjbb" {
		t.Fatalf("name = %q", b.Name())
	}
}

func TestHotSpotSlower(t *testing.T) {
	j := New(Options{JVM: JRockit}).Options()
	h := New(Options{JVM: HotSpot}).Options()
	if h.TxnCycles <= j.TxnCycles {
		t.Fatal("HotSpot should cost more cycles per transaction")
	}
	if h.heapConfig().CyclesPerByte <= j.heapConfig().CyclesPerByte {
		t.Fatal("HotSpot collector should work harder per byte")
	}
}

func TestHeapOverride(t *testing.T) {
	hc := gc.DefaultConfig(gc.ParallelSTW)
	hc.HeapBytes = 123e6
	b := New(Options{GC: gc.ParallelSTW, Heap: &hc})
	if got := b.opt.heapConfig().HeapBytes; got != 123e6 {
		t.Fatalf("heap override ignored: %v", got)
	}
}

func TestJVMString(t *testing.T) {
	if JRockit.String() != "jrockit" || HotSpot.String() != "hotspot" || JVM(9).String() == "" {
		t.Fatal("JVM names")
	}
}

func TestRegistered(t *testing.T) {
	w, err := workload.New("specjbb")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "specjbb" {
		t.Fatal("registry returned wrong workload")
	}
}

func TestThroughputScalesWithComputePower(t *testing.T) {
	// On symmetric configurations throughput must track compute power:
	// 4f-0s has 8x the capacity of 0f-4s/8.
	fast := sample(t, "4f-0s", sched.PolicyNaive, gc.ParallelSTW, 12, 2).Mean()
	slow := sample(t, "0f-4s/8", sched.PolicyNaive, gc.ParallelSTW, 12, 2).Mean()
	ratio := fast / slow
	if ratio < 6.5 || ratio > 9.5 {
		t.Fatalf("4f-0s/0f-4s÷8 throughput ratio = %.2f, want ~8", ratio)
	}
}

func TestSymmetricConfigsStable(t *testing.T) {
	for _, cfg := range []string{"4f-0s", "0f-4s/8"} {
		for _, kind := range []gc.Kind{gc.ParallelSTW, gc.ConcurrentGenerational} {
			s := sample(t, cfg, sched.PolicyNaive, kind, 12, 4)
			if cov := s.CoV(); cov > 0.02 {
				t.Errorf("%s gc=%v CoV = %.4f, want < 0.02", cfg, kind, cov)
			}
		}
	}
}

func TestConcurrentGCUnstableOnAsymmetric(t *testing.T) {
	// The paper's Figure 1(b): generational concurrent GC on 2f-2s/8 is
	// highly unstable across runs under the stock kernel.
	s := sample(t, "2f-2s/8", sched.PolicyNaive, gc.ConcurrentGenerational, 12, 6)
	if cov := s.CoV(); cov < 0.10 {
		t.Fatalf("2f-2s/8 concurrent-GC CoV = %.4f, want > 0.10 (instability)", cov)
	}
}

func TestParallelGCMoreStableThanConcurrent(t *testing.T) {
	par := sample(t, "2f-2s/8", sched.PolicyNaive, gc.ParallelSTW, 12, 6).CoV()
	conc := sample(t, "2f-2s/8", sched.PolicyNaive, gc.ConcurrentGenerational, 12, 6).CoV()
	if par >= conc {
		t.Fatalf("parallel GC CoV %.4f >= concurrent GC CoV %.4f", par, conc)
	}
}

func TestAwareKernelFixesInstability(t *testing.T) {
	// The paper's Figure 2(b): the asymmetry-aware kernel eliminates the
	// instability and recovers the lost throughput.
	naive := sample(t, "2f-2s/8", sched.PolicyNaive, gc.ConcurrentGenerational, 12, 6)
	aware := sample(t, "2f-2s/8", sched.PolicyAsymmetryAware, gc.ConcurrentGenerational, 12, 6)
	if cov := aware.CoV(); cov > 0.02 {
		t.Fatalf("aware-kernel CoV = %.4f, want < 0.02", cov)
	}
	if aware.Mean() < naive.Max()*0.95 {
		t.Fatalf("aware-kernel mean %.0f below naive best %.0f", aware.Mean(), naive.Max())
	}
}

func TestThroughputRisesWithWarehousesUntilSaturation(t *testing.T) {
	// Figure 1's x-axis: throughput grows with warehouse count until the
	// cores saturate, then plateaus.
	one := sample(t, "4f-0s", sched.PolicyNaive, gc.ParallelSTW, 1, 1).Mean()
	four := sample(t, "4f-0s", sched.PolicyNaive, gc.ParallelSTW, 4, 1).Mean()
	twelve := sample(t, "4f-0s", sched.PolicyNaive, gc.ParallelSTW, 12, 1).Mean()
	if four < 2.5*one {
		t.Fatalf("4 warehouses (%.0f) should be ~4x of 1 (%.0f)", four, one)
	}
	if twelve < 0.8*four || twelve > 1.3*four {
		t.Fatalf("12 warehouses (%.0f) should plateau near 4 (%.0f)", twelve, four)
	}
}

func TestExtrasPopulated(t *testing.T) {
	cfg := cpu.MustParseConfig("4f-0s")
	pl := workload.NewPlatform(cfg, sched.Defaults(sched.PolicyNaive), 1)
	defer pl.Close()
	res := New(Options{Warehouses: 4, GC: gc.ConcurrentGenerational}).Run(pl)
	if res.Extra("gc_collections") <= 0 {
		t.Fatal("no collections recorded")
	}
	if res.Extra("warehouse_max_txn") < res.Extra("warehouse_min_txn") {
		t.Fatal("warehouse extrema inconsistent")
	}
	if !res.HigherIsBetter || res.Metric == "" {
		t.Fatal("result metadata missing")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := runOnce(t, "2f-2s/8", sched.PolicyNaive, gc.ConcurrentGenerational, 8, 99)
	b := runOnce(t, "2f-2s/8", sched.PolicyNaive, gc.ConcurrentGenerational, 8, 99)
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
}
