// Package multiprog models the workload class the asymmetric-multicore
// proposals the paper cites were evaluated on (Kumar et al., Grochowski
// et al.): a multiprogrammed batch of independent *single-threaded* jobs
// run to completion. The paper deliberately studies multi-threaded
// commercial applications instead; this package supplies the
// complementary baseline so the two regimes can be compared on the same
// simulated machines.
//
// Metrics: the batch makespan (primary), plus the mean and spread of
// per-job slowdowns relative to a dedicated fast core — the fairness
// question asymmetry raises for batch scheduling: who got the slow
// cores?
package multiprog

import (
	"fmt"

	"asmp/internal/cpu"
	"asmp/internal/sim"
	"asmp/internal/simtime"
	"asmp/internal/stats"
	"asmp/internal/workload"
	"asmp/internal/xrand"
)

// Options parameterises a batch.
type Options struct {
	// Jobs is the batch size.
	Jobs int
	// MeanCycles is the mean job length in fast-core cycles.
	MeanCycles float64
	// LengthCV is the spread of job lengths (a property of the batch,
	// not of the run).
	LengthCV float64
	// MaxMemFraction bounds each job's memory-bound share; jobs draw
	// theirs deterministically from the batch seed.
	MaxMemFraction float64
	// Slices is how many compute bursts each job issues (finer slices
	// give the scheduler preemption points beyond the timeslice).
	Slices int
	// BatchSeed selects the synthetic batch (fixed per study).
	BatchSeed uint64
}

// withDefaults fills unset fields with the study's standard values.
func (o Options) withDefaults() Options {
	if o.Jobs == 0 {
		o.Jobs = 16
	}
	if o.MeanCycles == 0 {
		o.MeanCycles = 2e9
	}
	if o.LengthCV == 0 {
		o.LengthCV = 0.7
	}
	if o.MaxMemFraction == 0 {
		o.MaxMemFraction = 0.4
	}
	if o.Slices == 0 {
		o.Slices = 8
	}
	return o
}

// Benchmark is the multiprogrammed batch workload.
type Benchmark struct {
	opt Options
}

// New returns a batch workload with the given options.
func New(opt Options) *Benchmark { return &Benchmark{opt: opt.withDefaults()} }

// Name implements workload.Workload.
func (b *Benchmark) Name() string { return "multiprog" }

// Identity implements workload.Identifier.
func (b *Benchmark) Identity() string {
	return fmt.Sprintf("multiprog|%+v", b.opt)
}

// Options returns the resolved options.
func (b *Benchmark) Options() Options { return b.opt }

// job is one single-threaded program of the batch.
type job struct {
	cycles float64
	memFr  float64
}

// jobs returns the deterministic batch composition.
func (b *Benchmark) jobs() []job {
	o := b.opt
	rng := xrand.New(o.BatchSeed ^ 0x9e3779b9)
	out := make([]job, o.Jobs)
	for i := range out {
		out[i] = job{
			cycles: rng.LogNormal(o.MeanCycles, o.LengthCV),
			memFr:  rng.Range(0, o.MaxMemFraction),
		}
	}
	return out
}

// idealSeconds returns a job's runtime on a dedicated full-speed core.
func idealSeconds(j job) float64 {
	return j.cycles / cpu.BaseHz // mem share takes the same time at duty 1
}

// Run implements workload.Workload. The primary metric is the batch
// makespan in seconds; extras carry the slowdown statistics.
func (b *Benchmark) Run(pl *workload.Platform) workload.Result {
	o := b.opt
	env := pl.Env
	batch := b.jobs()

	var makespan simtime.Time
	slow := &stats.Sample{}
	for i, j := range batch {
		j := j
		env.Go(fmt.Sprintf("job-%d", i), func(p *sim.Proc) {
			per := j.cycles / float64(o.Slices)
			for s := 0; s < o.Slices; s++ {
				p.ComputeMem(per*(1-j.memFr), simtime.Duration(per*j.memFr/cpu.BaseHz))
			}
			if p.Now() > makespan {
				makespan = p.Now()
			}
			slow.Add(float64(p.Now()) / idealSeconds(j))
		})
	}
	env.Run()

	res := workload.Result{
		Metric:         "batch makespan (s)",
		Value:          float64(makespan),
		HigherIsBetter: false,
	}
	res.AddExtra("mean_slowdown", slow.Mean())
	res.AddExtra("max_slowdown", slow.Max())
	res.AddExtra("slowdown_cov", slow.CoV())
	return res
}

func init() {
	workload.Register("multiprog", func() workload.Workload { return New(Options{}) })
}
