package multiprog

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/stats"
	"asmp/internal/workload"
)

func runOnce(t *testing.T, b *Benchmark, cfgName string, policy sched.Policy, seed uint64) workload.Result {
	t.Helper()
	pl := workload.NewPlatform(cpu.MustParseConfig(cfgName), sched.Defaults(policy), seed)
	defer pl.Close()
	return b.Run(pl)
}

func sample(t *testing.T, b *Benchmark, cfgName string, policy sched.Policy, runs int) *stats.Sample {
	t.Helper()
	s := &stats.Sample{}
	for i := 0; i < runs; i++ {
		s.Add(runOnce(t, b, cfgName, policy, uint64(60+i)).Value)
	}
	return s
}

func TestDefaultsAndRegistry(t *testing.T) {
	b := New(Options{})
	if b.Options().Jobs != 16 || b.Options().Slices == 0 {
		t.Fatalf("defaults: %+v", b.Options())
	}
	if b.Name() != "multiprog" {
		t.Fatal("name")
	}
	if _, err := workload.New("multiprog"); err != nil {
		t.Fatal(err)
	}
}

func TestBatchDeterministic(t *testing.T) {
	a, c := New(Options{}).jobs(), New(Options{}).jobs()
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("batch not deterministic")
		}
	}
	if New(Options{BatchSeed: 1}).jobs()[0] == New(Options{BatchSeed: 2}).jobs()[0] {
		t.Fatal("batch seed ignored")
	}
}

func TestMakespanScales(t *testing.T) {
	b := New(Options{})
	fast := sample(t, b, "4f-0s", sched.PolicyNaive, 2).Mean()
	slow := sample(t, b, "0f-4s/4", sched.PolicyNaive, 2).Mean()
	if slow <= 1.5*fast {
		t.Fatalf("0f-4s/4 (%.1fs) should be far slower than 4f-0s (%.1fs)", slow, fast)
	}
}

func TestAwareBeatsNaiveOnAsymmetric(t *testing.T) {
	// Kumar-style result: with single-threaded jobs an asymmetry-aware
	// scheduler gets both a shorter makespan and fairer slowdowns.
	b := New(Options{})
	naive := sample(t, b, "2f-2s/8", sched.PolicyNaive, 4)
	aware := sample(t, b, "2f-2s/8", sched.PolicyAsymmetryAware, 4)
	if aware.Mean() >= naive.Mean() {
		t.Fatalf("aware makespan %.2f should beat naive %.2f", aware.Mean(), naive.Mean())
	}
	nRes := runOnce(t, b, "2f-2s/8", sched.PolicyNaive, 99)
	aRes := runOnce(t, b, "2f-2s/8", sched.PolicyAsymmetryAware, 99)
	if aRes.Extra("max_slowdown") >= nRes.Extra("max_slowdown") {
		t.Fatalf("aware max slowdown %.2f should beat naive %.2f",
			aRes.Extra("max_slowdown"), nRes.Extra("max_slowdown"))
	}
}

func TestNaiveUnstableOnAsymmetric(t *testing.T) {
	// Which jobs drew the slow cores changes run to run.
	b := New(Options{})
	naive := sample(t, b, "2f-2s/8", sched.PolicyNaive, 6)
	aware := sample(t, b, "2f-2s/8", sched.PolicyAsymmetryAware, 6)
	if naive.CoV() <= aware.CoV() {
		t.Fatalf("naive CoV %.4f should exceed aware CoV %.4f", naive.CoV(), aware.CoV())
	}
}

func TestSlowdownsReported(t *testing.T) {
	res := runOnce(t, New(Options{}), "2f-2s/8", sched.PolicyNaive, 1)
	if res.Extra("mean_slowdown") < 1 {
		t.Fatalf("mean slowdown %.2f below 1 is impossible", res.Extra("mean_slowdown"))
	}
	if res.Extra("max_slowdown") < res.Extra("mean_slowdown") {
		t.Fatal("max below mean")
	}
}

func TestDedicatedFastCoreIsIdeal(t *testing.T) {
	// One job on one fast core must achieve slowdown 1.
	b := New(Options{Jobs: 1})
	res := runOnce(t, b, "1f-0s", sched.PolicyNaive, 1)
	if s := res.Extra("mean_slowdown"); s < 0.999 || s > 1.001 {
		t.Fatalf("dedicated-core slowdown = %v, want 1", s)
	}
}
