package omp

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/workload"
)

func TestWeightedStaticString(t *testing.T) {
	if WeightedStatic.String() != "weighted-static" {
		t.Fatal("name")
	}
}

func TestAwareAndDynamicExclusive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for conflicting options")
		}
	}()
	New(Options{Benchmark: "swim", ForceDynamic: true, AsymmetryAware: true})
}

func TestWeightedShareExact(t *testing.T) {
	speeds := []float64{1, 1, 0.125, 0.125}
	r := Region{Iters: 512, CyclesPerIter: 1e6} // pure compute
	total := 0
	for tid := 0; tid < 4; tid++ {
		total += weightedShare(speeds, tid, 4, r)
	}
	if total != 512 {
		t.Fatalf("shares sum to %d, want 512", total)
	}
	// Fast threads get 8x the slow threads' iterations (pure compute).
	fast := weightedShare(speeds, 0, 4, r)
	slow := weightedShare(speeds, 2, 4, r)
	if fast < 7*slow || fast > 9*slow {
		t.Fatalf("fast/slow share ratio = %d/%d, want ~8", fast, slow)
	}
	// With memory-bound work the ratio shrinks (mem time is speed-blind).
	rm := Region{Iters: 512, CyclesPerIter: 1e6, MemFraction: 0.6}
	fastM := weightedShare(speeds, 0, 4, rm)
	slowM := weightedShare(speeds, 2, 4, rm)
	if ratio := float64(fastM) / float64(slowM); ratio > 6 {
		t.Fatalf("memory-bound share ratio %.1f should be well below 8", ratio)
	}
}

// The paper's point 4 realised: the asymmetry-aware application beats
// both the unmodified static program AND the untuned dynamic rewrite on
// an asymmetric machine.
func TestAwareApplicationBeatsBothRewrites(t *testing.T) {
	run := func(o Options) float64 {
		pl := workload.NewPlatform(cpu.MustParseConfig("2f-2s/8"), sched.Defaults(sched.PolicyNaive), 17)
		defer pl.Close()
		return New(o).Run(pl).Value
	}
	static := run(Options{Benchmark: "swim"})
	dynamic := run(Options{Benchmark: "swim", ForceDynamic: true})
	aware := run(Options{Benchmark: "swim", AsymmetryAware: true})
	if aware >= dynamic {
		t.Fatalf("aware app (%.1fs) should beat the dynamic rewrite (%.1fs): no dispatch overhead, no locality loss", aware, dynamic)
	}
	if aware >= static {
		t.Fatalf("aware app (%.1fs) should beat the static original (%.1fs): no slow-core gating", aware, static)
	}
}

func TestAwareApplicationNearOptimal(t *testing.T) {
	// On 2f-2s/8 with swim's 60% memory share, the machine's effective
	// capacity for this loop mix is 2*1 + 2*(1/(0.4*8+0.6)) ≈ 2.53
	// fast-core equivalents. The weighted-static runtime should land
	// within ~15% of work/capacity.
	pl := workload.NewPlatform(cpu.MustParseConfig("2f-2s/8"), sched.Defaults(sched.PolicyNaive), 17)
	defer pl.Close()
	b := New(Options{Benchmark: "swim", AsymmetryAware: true})
	got := b.Run(pl).Value

	plFast := workload.NewPlatform(cpu.MustParseConfig("4f-0s"), sched.Defaults(sched.PolicyNaive), 17)
	defer plFast.Close()
	fast := New(Options{Benchmark: "swim", AsymmetryAware: true}).Run(plFast).Value

	// capacity ratio fast/asym for this mix:
	wSlow := 1 / (0.4*8 + 0.6)
	capRatio := 4.0 / (2 + 2*wSlow)
	ideal := fast * capRatio
	if got > ideal*1.15 {
		t.Fatalf("aware runtime %.2fs, ideal ~%.2fs — partition not speed-proportional?", got, ideal)
	}
}

func TestAwareApplicationStable(t *testing.T) {
	b := New(Options{Benchmark: "ammp", AsymmetryAware: true})
	s := sample(t, b, "2f-2s/8", 5)
	if cov := s.CoV(); cov > 0.01 {
		t.Fatalf("aware ammp CoV %.4f, want < 0.01 (pinned threads, deterministic shares)", cov)
	}
}

func TestAwareSymmetricEqualsStatic(t *testing.T) {
	// On a symmetric machine the weighted partition degenerates to the
	// equal one; runtimes should match static closely.
	run := func(o Options) float64 {
		pl := workload.NewPlatform(cpu.MustParseConfig("4f-0s"), sched.Defaults(sched.PolicyNaive), 3)
		defer pl.Close()
		return New(o).Run(pl).Value
	}
	st := run(Options{Benchmark: "mgrid"})
	aw := run(Options{Benchmark: "mgrid", AsymmetryAware: true})
	if aw > st*1.05 || aw < st*0.9 {
		t.Fatalf("aware on symmetric (%.1fs) should match static (%.1fs)", aw, st)
	}
}
