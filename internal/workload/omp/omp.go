// Package omp models SPEC OMP (§3.5 of the paper): FORTRAN programs
// parallelised with OpenMP work-sharing loops, running on an
// OpenMP-runtime model that supports the three scheduling modes of the
// specification — static, dynamic and guided — plus the nowait clause.
//
// The mechanism under study: a statically scheduled loop gives every
// thread the same iteration count, so on an asymmetric machine the
// barrier at the loop's end waits for the slowest core and the machine
// behaves like all-slow (Figure 8(a)). Switching the loops to dynamic
// scheduling with sensible chunk sizes lets fast cores take more work,
// recovering near-4f-0s performance on 2f-2s/8 (Figure 8(b)).
package omp

import (
	"fmt"

	"asmp/internal/cpu"
	"asmp/internal/sim"
	"asmp/internal/simtime"
	"asmp/internal/workload"
)

// Schedule is an OpenMP loop-scheduling mode.
type Schedule int

const (
	// Static divides iterations into equal contiguous blocks up front.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks on demand.
	Dynamic
	// Guided hands out exponentially shrinking chunks on demand.
	Guided
	// WeightedStatic divides iterations proportionally to each thread's
	// core speed, with threads pinned to cores — an *asymmetry-aware
	// application* built on the relative-speed interface the paper's
	// point 4 proposes. No dispatch overhead, no barrier waste.
	WeightedStatic
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case WeightedStatic:
		return "weighted-static"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Region is one OpenMP work-sharing loop.
type Region struct {
	// Name labels the region for traces.
	Name string
	// Iters is the loop's iteration count.
	Iters int
	// CyclesPerIter is the work per iteration in fast-core cycles.
	CyclesPerIter float64
	// Schedule is the loop's scheduling mode.
	Schedule Schedule
	// Chunk is the dynamic/guided chunk size (0 = runtime default).
	Chunk int
	// NoWait skips the implicit barrier at the loop's end.
	NoWait bool
	// MemFraction is the share of each iteration's full-speed execution
	// time spent stalled on memory. Duty-cycle modulation does not slow
	// the memory system, so this portion takes the same wall-clock time
	// on every core — the reason memory-bound SPEC OMP codes lose less
	// than 8x on 1/8-duty cores.
	MemFraction float64
}

// Profile describes one SPEC OMP benchmark as a repeated sweep of
// regions with a serial master portion per timestep.
type Profile struct {
	// Name is the benchmark name (e.g. "swim").
	Name string
	// Repeats is the number of outer timesteps.
	Repeats int
	// SerialCycles is the master-only work per timestep.
	SerialCycles float64
	// SerialMemFraction is the memory-stalled share of the serial work.
	SerialMemFraction float64
	// Regions is the per-timestep loop sequence.
	Regions []Region
}

// TotalWork returns the benchmark's total parallel work in cycles.
func (pf Profile) TotalWork() float64 {
	w := 0.0
	for _, r := range pf.Regions {
		w += float64(r.Iters) * r.CyclesPerIter
	}
	return (w + pf.SerialCycles) * float64(pf.Repeats)
}

// Options parameterises a SPEC OMP run.
type Options struct {
	// Benchmark is the profile name; see Benchmarks().
	Benchmark string
	// Threads is the OpenMP team size (default: one per core).
	Threads int
	// ForceDynamic rewrites every loop to dynamic scheduling with a
	// large chunk — the paper's Figure 8(b) source modification. The
	// rewrite costs performance in absolute terms (the paper's authors
	// did not tune it): chunk-dispatch overhead plus lost locality.
	ForceDynamic bool
	// AsymmetryAware rewrites every loop to WeightedStatic: the program
	// queries the platform's relative core speeds, pins its threads and
	// sizes each thread's share to its core — the paper's proposed
	// application-level remedy, taken one step further than Figure 8(b).
	// Mutually exclusive with ForceDynamic.
	AsymmetryAware bool
	// ForcedChunk overrides the rewrite's chunk size when > 0 (for the
	// chunk-size ablation; 0 picks the paper's large-chunk heuristic).
	ForcedChunk int
	// DispatchCycles is the cost of grabbing one chunk from the shared
	// iteration counter (dynamic and guided modes).
	DispatchCycles float64
	// ForcedPenalty multiplies per-iteration cost when ForceDynamic is
	// set, modelling the locality loss of the untuned rewrite.
	ForcedPenalty float64
}

// withDefaults fills unset fields with the study's standard values.
func (o Options) withDefaults() Options {
	if o.Benchmark == "" {
		o.Benchmark = "swim"
	}
	if o.DispatchCycles == 0 {
		o.DispatchCycles = 50e3
	}
	if o.ForcedPenalty == 0 {
		o.ForcedPenalty = 1.25
	}
	return o
}

// Benchmark is one SPEC OMP program.
type Benchmark struct {
	opt     Options
	profile Profile
}

// New returns the named SPEC OMP benchmark. It panics on unknown names
// (the set is fixed by the suite).
func New(opt Options) *Benchmark {
	opt = opt.withDefaults()
	if opt.ForceDynamic && opt.AsymmetryAware {
		panic("omp: ForceDynamic and AsymmetryAware are mutually exclusive")
	}
	pf, ok := profiles[opt.Benchmark]
	if !ok {
		panic(fmt.Sprintf("omp: unknown benchmark %q (have %v)", opt.Benchmark, Benchmarks()))
	}
	return &Benchmark{opt: opt, profile: pf}
}

// Name implements workload.Workload.
func (b *Benchmark) Name() string { return "omp-" + b.profile.Name }

// Identity implements workload.Identifier. The profile is a fixed
// function of opt.Benchmark, so rendering the options covers it.
func (b *Benchmark) Identity() string {
	return fmt.Sprintf("omp|%+v", b.opt)
}

// Options returns the resolved options.
func (b *Benchmark) Options() Options { return b.opt }

// Profile returns the benchmark's region profile.
func (b *Benchmark) Profile() Profile { return b.profile }

// regionState is the shared per-encounter state of a work-sharing loop.
type regionState struct {
	next int // next unclaimed iteration
}

// Run implements workload.Workload. The primary metric is the program's
// wall-clock runtime in seconds (lower is better).
func (b *Benchmark) Run(pl *workload.Platform) workload.Result {
	o := b.opt
	pf := b.profile
	env := pl.Env
	nthreads := o.Threads
	if nthreads <= 0 {
		nthreads = pl.Config.Fast + pl.Config.Slow
	}

	barrier := sim.NewBarrier(nthreads)
	// Per-(timestep, region) shared loop state, created lazily by the
	// first thread to encounter that instance — correct under nowait,
	// where threads can be in different regions at once.
	states := map[[2]int]*regionState{}
	stateOf := func(rep, reg int) *regionState {
		key := [2]int{rep, reg}
		st, ok := states[key]
		if !ok {
			st = &regionState{}
			states[key] = st
		}
		return st
	}

	var finish simtime.Time
	done := 0

	// The asymmetry-aware rewrite queries the platform's relative core
	// speeds once at start-up (the paper's proposed HW/SW interface) and
	// pins one thread per core.
	var speeds []float64
	if o.AsymmetryAware {
		speeds = pl.Sched.RelativeSpeeds()
	}

	body := func(tid int) func(*sim.Proc) {
		return func(p *sim.Proc) {
			if o.AsymmetryAware {
				p.SetAffinity(sim.Single(tid % len(speeds)))
			}
			for rep := 0; rep < pf.Repeats; rep++ {
				// Master executes the serial portion; everyone else waits
				// at the region-entry barrier.
				if tid == 0 && pf.SerialCycles > 0 {
					mf := pf.SerialMemFraction
					p.ComputeMem(pf.SerialCycles*(1-mf),
						simtime.Duration(pf.SerialCycles*mf/cpu.BaseHz))
				}
				barrier.Wait(p)
				for ri, r := range pf.Regions {
					b.runRegion(p, tid, nthreads, r, stateOf(rep, ri), speeds)
					if !r.NoWait {
						barrier.Wait(p)
					}
				}
				// Timestep boundary.
				barrier.Wait(p)
			}
			done++
			if p.Now() > finish {
				finish = p.Now()
			}
		}
	}
	for t := 0; t < nthreads; t++ {
		env.Go(fmt.Sprintf("%s-omp-%d", pf.Name, t), body(t))
	}
	env.Run()
	if done != nthreads {
		panic(fmt.Sprintf("omp: %d of %d threads finished", done, nthreads))
	}

	return workload.Result{
		Metric:         "runtime (s)",
		Value:          float64(finish),
		HigherIsBetter: false,
	}
}

// weightedShare returns thread tid's iteration count under the
// asymmetry-aware weighted-static partition.
func weightedShare(speeds []float64, tid, nthreads int, r Region) int {
	weight := func(t int) float64 {
		s := speeds[t%len(speeds)]
		return 1 / ((1-r.MemFraction)/s + r.MemFraction)
	}
	total := 0.0
	for t := 0; t < nthreads; t++ {
		total += weight(t)
	}
	// Contiguous partition by cumulative weight, rounded consistently so
	// the shares sum exactly to Iters.
	bound := func(t int) int {
		acc := 0.0
		for i := 0; i < t; i++ {
			acc += weight(i)
		}
		return int(acc/total*float64(r.Iters) + 0.5)
	}
	return bound(tid+1) - bound(tid)
}

// runRegion executes thread tid's share of one loop instance.
func (b *Benchmark) runRegion(p *sim.Proc, tid, nthreads int, r Region, st *regionState, speeds []float64) {
	o := b.opt
	sched := r.Schedule
	chunk := r.Chunk
	perIter := r.CyclesPerIter
	if o.AsymmetryAware {
		sched = WeightedStatic
	}
	if o.ForceDynamic {
		sched = Dynamic
		// Large chunks for long loops keep dispatch overhead small, as
		// the paper's modification chose.
		chunk = r.Iters / (8 * nthreads)
		if o.ForcedChunk > 0 {
			chunk = o.ForcedChunk
		}
		if chunk < 1 {
			chunk = 1
		}
		perIter *= o.ForcedPenalty
	}

	// Split an iteration's cost into duty-scaled compute cycles and
	// wall-clock memory-stall time.
	iterWork := func(n int, extra float64) (cycles float64, mem simtime.Duration) {
		total := float64(n) * perIter
		cycles = extra + total*(1-r.MemFraction)
		mem = simtime.Duration(total * r.MemFraction / cpu.BaseHz)
		return
	}

	switch sched {
	case Static:
		// Equal contiguous blocks: iteration i goes to thread i*T/n.
		lo := tid * r.Iters / nthreads
		hi := (tid + 1) * r.Iters / nthreads
		if n := hi - lo; n > 0 {
			cycles, mem := iterWork(n, 0)
			p.ComputeMem(cycles, mem)
		}
	case WeightedStatic:
		// Contiguous blocks proportional to each pinned thread's
		// *effective* rate for this loop's compute/memory mix: a core at
		// relative speed s processes an iteration in (1-mf)/s + mf time
		// units, so its fair share weight is the reciprocal.
		n := weightedShare(speeds, tid, nthreads, r)
		if n > 0 {
			cycles, mem := iterWork(n, 0)
			p.ComputeMem(cycles, mem)
		}
	case Dynamic:
		if chunk <= 0 {
			chunk = 1
		}
		for st.next < r.Iters {
			n := chunk
			if st.next+n > r.Iters {
				n = r.Iters - st.next
			}
			st.next += n
			cycles, mem := iterWork(n, o.DispatchCycles)
			p.ComputeMem(cycles, mem)
		}
	case Guided:
		minChunk := chunk
		if minChunk <= 0 {
			minChunk = 1
		}
		for st.next < r.Iters {
			remaining := r.Iters - st.next
			n := remaining / (2 * nthreads)
			if n < minChunk {
				n = minChunk
			}
			if n > remaining {
				n = remaining
			}
			st.next += n
			cycles, mem := iterWork(n, o.DispatchCycles)
			p.ComputeMem(cycles, mem)
		}
	default:
		panic(fmt.Sprintf("omp: unknown schedule %v", sched))
	}
}
