package omp

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/stats"
	"asmp/internal/workload"
)

func runOnce(t *testing.T, b *Benchmark, cfgName string, seed uint64) float64 {
	t.Helper()
	pl := workload.NewPlatform(cpu.MustParseConfig(cfgName), sched.Defaults(sched.PolicyNaive), seed)
	defer pl.Close()
	return b.Run(pl).Value
}

func sample(t *testing.T, b *Benchmark, cfgName string, runs int) *stats.Sample {
	t.Helper()
	s := &stats.Sample{}
	for i := 0; i < runs; i++ {
		s.Add(runOnce(t, b, cfgName, uint64(40+i)))
	}
	return s
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 10 {
		t.Fatalf("expected the paper's 10 programs, got %v", bs)
	}
	for _, n := range bs {
		if _, err := workload.New("omp-" + n); err != nil {
			t.Errorf("%s not registered: %v", n, err)
		}
	}
}

func TestUnknownBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Options{Benchmark: "gafort"}) // excluded in the paper too
}

func TestScheduleStrings(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" ||
		Guided.String() != "guided" || Schedule(9).String() == "" {
		t.Fatal("schedule names")
	}
}

func TestProfileTotalWork(t *testing.T) {
	pf := Profile{
		Repeats:      2,
		SerialCycles: 10,
		Regions:      []Region{{Iters: 3, CyclesPerIter: 5}},
	}
	if got := pf.TotalWork(); got != 2*(15+10) {
		t.Fatalf("TotalWork = %v", got)
	}
}

func TestRuntimeScalesOnSymmetricConfigs(t *testing.T) {
	b := New(Options{Benchmark: "equake"})
	fast := runOnce(t, b, "4f-0s", 1)
	slow := runOnce(t, b, "0f-4s/8", 1)
	// Memory stalls don't scale with duty, so the ratio is below 8 but
	// must still be large.
	if r := slow / fast; r < 3 || r > 8.5 {
		t.Fatalf("0f-4s/8 vs 4f-0s ratio %.2f, want within (3, 8.5)", r)
	}
}

func TestStaticGatedBySlowestCore(t *testing.T) {
	// Figure 8(a): under static scheduling 2f-2s/8 behaves close to
	// 0f-4s/8 — the slowest processor limits the application — despite
	// having 4.5x its compute power.
	for _, bench := range []string{"swim", "applu", "fma3d"} {
		b := New(Options{Benchmark: bench})
		asym := sample(t, b, "2f-2s/8", 2).Mean()
		allSlow := sample(t, b, "0f-4s/8", 1).Mean()
		fast := sample(t, b, "4f-0s", 1).Mean()
		if asym > allSlow {
			t.Errorf("%s: 2f-2s/8 (%.1fs) must not be slower than 0f-4s/8 (%.1fs)", bench, asym, allSlow)
		}
		if asym < 0.6*allSlow {
			t.Errorf("%s: 2f-2s/8 (%.1fs) should be near 0f-4s/8 (%.1fs), not near 4f-0s (%.1fs)",
				bench, asym, allSlow, fast)
		}
	}
}

func TestStaticStableRuns(t *testing.T) {
	// Most static benchmarks are stable (if unscalable) on 2f-2s/8.
	for _, bench := range []string{"swim", "equake"} {
		b := New(Options{Benchmark: bench})
		if cov := sample(t, b, "2f-2s/8", 3).CoV(); cov > 0.06 {
			t.Errorf("%s CoV %.4f, want < 0.06", bench, cov)
		}
	}
}

func TestAmmpMappingSensitivity(t *testing.T) {
	// ammp's seven coarse-iteration loops: whether a 2-iteration block
	// lands on a fast or slow core changes the critical path, so across
	// enough runs the runtimes are bimodal — the paper's "the mapping
	// library ... could easily map them in a different order".
	s := sample(t, New(Options{Benchmark: "ammp"}), "2f-2s/8", 12)
	if ratio := s.Max() / s.Min(); ratio < 1.3 {
		t.Fatalf("ammp runtime spread %.2fx, want bimodal (> 1.3x): [%v, %v]", ratio, s.Min(), s.Max())
	}
	swim := sample(t, New(Options{Benchmark: "swim"}), "2f-2s/8", 12)
	if s.CoV() <= swim.CoV() {
		t.Fatalf("ammp CoV %.4f should exceed swim CoV %.4f", s.CoV(), swim.CoV())
	}
}

func TestGalgelNowaitHelps(t *testing.T) {
	// galgel's guided+nowait hot loops let fast cores run ahead, so its
	// asymmetric slowdown (relative to its own 4f-0s time) is smaller
	// than a fully static peer's.
	rel := func(bench string) float64 {
		b := New(Options{Benchmark: bench})
		return runOnce(t, b, "2f-2s/8", 3) / runOnce(t, b, "4f-0s", 3)
	}
	if g, s := rel("galgel"), rel("swim"); g >= s {
		t.Fatalf("galgel relative slowdown %.2f should beat swim's %.2f", g, s)
	}
}

func TestDynamicRewriteRestoresScalability(t *testing.T) {
	// Figure 8(b): with all loops dynamic, 2f-2s/8 lands near 4f-0s and
	// clearly beats the midpoint of 4f-0s and 0f-4s/8.
	for _, bench := range []string{"swim", "applu"} {
		b := New(Options{Benchmark: bench, ForceDynamic: true})
		fast := runOnce(t, b, "4f-0s", 1)
		asym := runOnce(t, b, "2f-2s/8", 1)
		allSlow := runOnce(t, b, "0f-4s/8", 1)
		mid := (fast + allSlow) / 2
		if asym >= mid {
			t.Errorf("%s dynamic: 2f-2s/8 (%.1fs) should beat midpoint (%.1fs)", bench, asym, mid)
		}
		if asym > 2.2*fast {
			t.Errorf("%s dynamic: 2f-2s/8 (%.1fs) should be near 4f-0s (%.1fs)", bench, asym, fast)
		}
	}
}

func TestDynamicRewriteCostsAbsolutePerformance(t *testing.T) {
	// The paper's modified sources run slower in absolute terms.
	b := New(Options{Benchmark: "swim"})
	bd := New(Options{Benchmark: "swim", ForceDynamic: true})
	if orig, dyn := runOnce(t, b, "4f-0s", 1), runOnce(t, bd, "4f-0s", 1); dyn <= orig {
		t.Fatalf("untuned dynamic rewrite (%.1fs) should cost vs original (%.1fs)", dyn, orig)
	}
}

func TestDynamicStable(t *testing.T) {
	b := New(Options{Benchmark: "ammp", ForceDynamic: true})
	if cov := sample(t, b, "2f-2s/8", 4).CoV(); cov > 0.05 {
		t.Fatalf("dynamic ammp CoV %.4f, want < 0.05", cov)
	}
}

func TestMemoryBoundLosesLess(t *testing.T) {
	// swim (60% memory) must lose less than wupwise (25% memory) when
	// every core drops to 1/8 duty.
	rel := func(bench string) float64 {
		b := New(Options{Benchmark: bench})
		return runOnce(t, b, "0f-4s/8", 1) / runOnce(t, b, "4f-0s", 1)
	}
	if swim, wup := rel("swim"), rel("wupwise"); swim >= wup {
		t.Fatalf("memory-bound swim ratio %.2f should be below wupwise %.2f", swim, wup)
	}
}

func TestThreadsOverride(t *testing.T) {
	b := New(Options{Benchmark: "swim", Threads: 2})
	two := runOnce(t, b, "4f-0s", 1)
	four := runOnce(t, New(Options{Benchmark: "swim"}), "4f-0s", 1)
	if two <= four {
		t.Fatalf("2 threads (%.1fs) should be slower than 4 (%.1fs)", two, four)
	}
}

func TestDeterministic(t *testing.T) {
	b := New(Options{Benchmark: "mgrid"})
	if a, c := runOnce(t, b, "2f-2s/8", 5), runOnce(t, b, "2f-2s/8", 5); a != c {
		t.Fatalf("same seed: %v vs %v", a, c)
	}
}
