package omp

import (
	"sort"

	"asmp/internal/workload"
)

// The benchmark profiles below describe the ten SPEC OMPM2001 programs
// the paper runs (gafort is excluded there too, for compilation
// problems). Region counts, scheduling modes and the nowait structure
// follow the paper's §3.5 discussion — most loops statically scheduled;
// galgel with 30 short regions of which the three hottest carry nowait
// and guided scheduling; ammp with seven large tasks of only a handful
// of coarse iterations each. Iteration costs and memory fractions are
// synthetic but chosen so the suite's relative runtimes and its
// memory-bound character (swim, mgrid, art) resemble the published
// medium-input behaviour.

// regions is shorthand for n identical regions.
func regions(n string, count, iters int, cyclesPerIter, memFrac float64) []Region {
	out := make([]Region, count)
	for i := range out {
		out[i] = Region{
			Name:          n,
			Iters:         iters,
			CyclesPerIter: cyclesPerIter,
			Schedule:      Static,
			MemFraction:   memFrac,
		}
	}
	return out
}

var profiles = map[string]Profile{
	"wupwise": {
		Name:              "wupwise",
		Repeats:           40,
		SerialCycles:      12e6,
		SerialMemFraction: 0.4,
		Regions:           regions("zgemm", 4, 512, 1.4e6, 0.25),
	},
	"swim": {
		Name:              "swim",
		Repeats:           50,
		SerialCycles:      10e6,
		SerialMemFraction: 0.4,
		Regions:           regions("calc", 3, 512, 1.8e6, 0.60),
	},
	"mgrid": {
		Name:              "mgrid",
		Repeats:           40,
		SerialCycles:      10e6,
		SerialMemFraction: 0.4,
		Regions:           regions("resid", 5, 256, 2.2e6, 0.55),
	},
	"applu": {
		Name:              "applu",
		Repeats:           35,
		SerialCycles:      20e6,
		SerialMemFraction: 0.4,
		Regions:           regions("ssor", 5, 200, 2.6e6, 0.35),
	},
	"galgel": {
		Name:              "galgel",
		Repeats:           30,
		SerialCycles:      12e6,
		SerialMemFraction: 0.4,
		Regions: append(
			// Three hot regions: guided, nowait, as the paper observes.
			[]Region{
				{Name: "syshtn", Iters: 256, CyclesPerIter: 1.2e6, Schedule: Guided, NoWait: true, MemFraction: 0.2},
				{Name: "sysnsn", Iters: 256, CyclesPerIter: 1.2e6, Schedule: Guided, NoWait: true, MemFraction: 0.2},
				{Name: "grsum", Iters: 256, CyclesPerIter: 1.2e6, Schedule: Guided, NoWait: true, MemFraction: 0.2},
			},
			regions("short", 27, 48, 0.4e6, 0.2)...,
		),
	},
	"equake": {
		Name:              "equake",
		Repeats:           50,
		SerialCycles:      15e6,
		SerialMemFraction: 0.4,
		Regions:           regions("smvp", 3, 384, 1.5e6, 0.45),
	},
	"apsi": {
		Name:              "apsi",
		Repeats:           30,
		SerialCycles:      12e6,
		SerialMemFraction: 0.4,
		Regions:           regions("dctdx", 6, 256, 1.6e6, 0.30),
	},
	"fma3d": {
		Name:              "fma3d",
		Repeats:           25,
		SerialCycles:      20e6,
		SerialMemFraction: 0.4,
		Regions:           regions("platq", 8, 300, 1.8e6, 0.30),
	},
	"art": {
		Name:              "art",
		Repeats:           40,
		SerialCycles:      10e6,
		SerialMemFraction: 0.4,
		Regions:           regions("match", 2, 500, 3.5e6, 0.50),
	},
	"ammp": {
		Name:              "ammp",
		Repeats:           20,
		SerialCycles:      10e6,
		SerialMemFraction: 0.4,
		// Seven large parallel tasks, each a for-loop over only six
		// coarse iterations: static division gives two iterations to two
		// threads and one to the others, so which *cores* those threads
		// sit on changes the critical path run to run.
		Regions: regions("mm_fv_update", 7, 6, 70e6, 0.30),
	},
}

// Benchmarks lists the available SPEC OMP programs in sorted order.
func Benchmarks() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	for _, name := range Benchmarks() {
		name := name
		workload.Register("omp-"+name, func() workload.Workload {
			return New(Options{Benchmark: name})
		})
	}
}
