package omp

import (
	"fmt"
	"testing"
	"testing/quick"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/workload"
)

// runCustom executes a single-profile program built on the fly, giving
// the runtime tests precise control over region structure.
func runCustom(t *testing.T, pf Profile, cfgName string, seed uint64) float64 {
	t.Helper()
	// Temporarily register the custom profile under a unique name.
	name := fmt.Sprintf("custom-%s-%d", t.Name(), seed)
	profiles[name] = pf
	t.Cleanup(func() { delete(profiles, name) })
	pf.Name = name
	profiles[name] = pf

	pl := workload.NewPlatform(cpu.MustParseConfig(cfgName), sched.Defaults(sched.PolicyNaive), seed)
	defer pl.Close()
	return New(Options{Benchmark: name}).Run(pl).Value
}

// TestStaticBlockPartitionProperty: for any iteration and thread counts,
// static blocks are contiguous, disjoint and cover [0, iters).
func TestStaticBlockPartitionProperty(t *testing.T) {
	f := func(itersRaw uint16, threadsRaw uint8) bool {
		iters := int(itersRaw%1000) + 1
		nthreads := int(threadsRaw%8) + 1
		covered := 0
		prevHi := 0
		for tid := 0; tid < nthreads; tid++ {
			lo := tid * iters / nthreads
			hi := (tid + 1) * iters / nthreads
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == iters && prevHi == iters
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedSharePartitionProperty: weighted shares are non-negative
// and sum exactly to the iteration count for any speeds/mem mix.
func TestWeightedSharePartitionProperty(t *testing.T) {
	f := func(itersRaw uint16, speedsRaw [4]uint8, memRaw uint8) bool {
		iters := int(itersRaw%2000) + 1
		speeds := make([]float64, 4)
		for i, v := range speedsRaw {
			speeds[i] = (float64(v%8) + 1) / 8
		}
		r := Region{Iters: iters, CyclesPerIter: 1e6, MemFraction: float64(memRaw%100) / 100}
		total := 0
		for tid := 0; tid < 4; tid++ {
			n := weightedShare(speeds, tid, 4, r)
			if n < 0 {
				return false
			}
			total += n
		}
		return total == iters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGuidedChunksShrink: guided scheduling hands out decreasing chunk
// sizes; a single thread draining a loop alone must see a strictly
// non-increasing chunk sequence ending at the minimum chunk.
func TestGuidedChunksShrink(t *testing.T) {
	// Reproduce the runtime's guided arithmetic directly.
	const iters = 1000
	const nthreads = 4
	next := 0
	prev := 1 << 30
	for next < iters {
		remaining := iters - next
		n := remaining / (2 * nthreads)
		if n < 1 {
			n = 1
		}
		if n > remaining {
			n = remaining
		}
		if n > prev {
			t.Fatalf("guided chunk grew: %d after %d", n, prev)
		}
		prev = n
		next += n
	}
	if next != iters {
		t.Fatalf("guided covered %d of %d", next, iters)
	}
}

// TestNowaitLetsThreadsRunAhead: with nowait on the first region, a fast
// thread must be able to enter the second region before slow threads
// finish the first. Observable consequence: total runtime on an
// asymmetric machine is lower than with the barrier.
func TestNowaitLetsThreadsRunAhead(t *testing.T) {
	base := Profile{
		Repeats: 6,
		Regions: []Region{
			{Name: "a", Iters: 64, CyclesPerIter: 2e6, Schedule: Guided},
			{Name: "b", Iters: 64, CyclesPerIter: 2e6, Schedule: Guided},
		},
	}
	withWait := runCustom(t, base, "2f-2s/8", 1)
	nowait := base
	nowait.Regions = append([]Region(nil), base.Regions...)
	nowait.Regions[0].NoWait = true
	nowait.Regions[1].NoWait = true
	withNowait := runCustom(t, nowait, "2f-2s/8", 1)
	if withNowait >= withWait {
		t.Fatalf("nowait (%.2fs) should beat barriers (%.2fs) on an asymmetric machine", withNowait, withWait)
	}
}

// TestDynamicSelfBalances: a dynamic loop's runtime on 2f-2s/8
// approaches work/capacity, far from the static barrier bound.
func TestDynamicSelfBalances(t *testing.T) {
	pf := Profile{
		Repeats: 4,
		Regions: []Region{{Name: "d", Iters: 512, CyclesPerIter: 2e6, Schedule: Dynamic, Chunk: 8}},
	}
	got := runCustom(t, pf, "2f-2s/8", 1)
	work := pf.TotalWork() / cpu.BaseHz // fast-core seconds
	ideal := work / 2.25
	staticBound := work / 4 * 8 // each thread's equal share on a 1/8 core
	if got > ideal*1.3 {
		t.Fatalf("dynamic runtime %.2fs too far from ideal %.2fs", got, ideal)
	}
	if got > staticBound {
		t.Fatalf("dynamic runtime %.2fs worse than static bound %.2fs", got, staticBound)
	}
}

// TestDispatchOverheadCharged: tiny chunks on a big loop must cost
// measurably more than big chunks.
func TestDispatchOverheadCharged(t *testing.T) {
	mk := func(chunk int) Profile {
		return Profile{
			Repeats: 2,
			Regions: []Region{{Name: "d", Iters: 4096, CyclesPerIter: 0.1e6, Schedule: Dynamic, Chunk: chunk}},
		}
	}
	small := runCustom(t, mk(1), "4f-0s", 1)
	big := runCustom(t, mk(256), "4f-0s", 1)
	// chunk=1 pays DispatchCycles (50k) per 100k-cycle iteration; some
	// of the difference is hidden by barrier tails, so require >= 15%.
	if small <= big*1.15 {
		t.Fatalf("chunk=1 (%.3fs) should pay visible dispatch overhead vs chunk=256 (%.3fs)", small, big)
	}
}

// TestStaticGatingWhenPinned: under the asymmetry-aware rewrite threads
// are pinned one per core, so a deliberately *unweighted* static region
// (reconstructed via equal speeds) is exactly gated by the slow core.
// Here we use the plain benchmark on a machine with no fast cores, where
// every placement is equivalent: runtime must equal the serialized
// bound exactly.
func TestStaticGatingDeterministicOnUniformMachine(t *testing.T) {
	pf := Profile{
		Repeats: 5,
		Regions: []Region{{Name: "s", Iters: 64, CyclesPerIter: 4e6, Schedule: Static}},
	}
	got := runCustom(t, pf, "0f-4s/8", 1)
	// Every thread: 16 iters x 4e6 cycles on a 1/8-speed core, barriers
	// between repeats add no time when all threads are equal. Random
	// initial placement can collide two threads on one core until the
	// balancer spreads them, so allow a transient above the bound.
	want := 5 * 16.0 * 4e6 / (0.125 * cpu.BaseHz)
	if got < want-1e-6 || got > want*1.15 {
		t.Fatalf("uniform-machine runtime %.4fs, want [%.4f, %.4f]", got, want, want*1.15)
	}
}

// TestProfilesWellFormed sanity-checks every shipped benchmark profile.
func TestProfilesWellFormed(t *testing.T) {
	for name, pf := range profiles {
		if pf.Name != name {
			t.Errorf("%s: profile name mismatch %q", name, pf.Name)
		}
		if pf.Repeats <= 0 || len(pf.Regions) == 0 {
			t.Errorf("%s: empty profile", name)
		}
		for _, r := range pf.Regions {
			if r.Iters <= 0 || r.CyclesPerIter <= 0 {
				t.Errorf("%s/%s: bad region", name, r.Name)
			}
			if r.MemFraction < 0 || r.MemFraction >= 1 {
				t.Errorf("%s/%s: bad MemFraction", name, r.Name)
			}
		}
		if pf.TotalWork() <= 0 {
			t.Errorf("%s: no work", name)
		}
	}
}

// TestThreadsExceedCores: more threads than cores must still complete
// and not beat the capacity bound.
func TestThreadsExceedCores(t *testing.T) {
	pl := workload.NewPlatform(cpu.MustParseConfig("2f-2s/8"), sched.Defaults(sched.PolicyNaive), 1)
	defer pl.Close()
	b := New(Options{Benchmark: "equake", Threads: 8})
	got := b.Run(pl).Value
	if got <= 0 {
		t.Fatal("no runtime")
	}
	lower := b.Profile().TotalWork() * (1 - 0.45) / (2.25 * cpu.BaseHz) // compute part only
	if got < lower {
		t.Fatalf("runtime %.2fs beats capacity bound %.2fs", got, lower)
	}
}
