// Package pmake models the PMAKE experiment of §3.7: a parallel build of
// a large source tree (the paper compiles the ~7900-file Linux kernel
// with make -j4). A serial makefile-parsing phase is followed by
// independent compile jobs dispatched on demand to a pool of job slots,
// and a serial link step closes the build.
//
// On-demand dispatch makes the build stable and predictably scalable
// under asymmetry, and the serial head and tail are exactly where one
// fast core pays off: a 1f-3s/8 machine beats the all-slow 0f-4s/4 and
// 0f-4s/8 configurations clearly.
package pmake

import (
	"fmt"

	"asmp/internal/cpu"
	"asmp/internal/sim"
	"asmp/internal/simtime"
	"asmp/internal/workload"
	"asmp/internal/xrand"
)

// Options parameterises a build.
type Options struct {
	// Files is the number of translation units (a scaled-down kernel
	// tree).
	Files int
	// CompileCycles is the mean cost of compiling one file.
	CompileCycles float64
	// CompileCV is the spread of file compile costs; costs are a
	// deterministic property of the tree, not of the run.
	CompileCV float64
	// ParseCycles is the serial makefile-parsing head.
	ParseCycles float64
	// LinkCycles is the serial link tail.
	LinkCycles float64
	// Jobs is the -j level; 0 means one per core, like the paper's
	// "make -j4" on the 4-way box.
	Jobs int
	// MemFraction is the share of compile time stalled on memory.
	MemFraction float64
	// SerialMemFraction is the share of the parse and link phases stalled
	// on memory and disk I/O — large in practice (the linker is
	// I/O-heavy), which keeps the serial phases' placement from
	// dominating run-to-run behaviour.
	SerialMemFraction float64
	// TreeSeed selects the synthetic source tree (fixed per study).
	TreeSeed uint64
}

// withDefaults fills unset fields with the study's standard values.
func (o Options) withDefaults() Options {
	if o.Files == 0 {
		o.Files = 1600
	}
	if o.CompileCycles == 0 {
		o.CompileCycles = 40e6
	}
	if o.CompileCV == 0 {
		o.CompileCV = 0.55
	}
	if o.ParseCycles == 0 {
		o.ParseCycles = 150e6
	}
	if o.LinkCycles == 0 {
		o.LinkCycles = 400e6
	}
	if o.SerialMemFraction == 0 {
		o.SerialMemFraction = 0.7
	}
	if o.MemFraction == 0 {
		o.MemFraction = 0.25
	}
	if o.TreeSeed == 0 {
		o.TreeSeed = 7
	}
	return o
}

// Benchmark is the parallel-make workload.
type Benchmark struct {
	opt Options
}

// New returns a PMAKE workload with the given options.
func New(opt Options) *Benchmark { return &Benchmark{opt: opt.withDefaults()} }

// Name implements workload.Workload.
func (b *Benchmark) Name() string { return "pmake" }

// Identity implements workload.Identifier.
func (b *Benchmark) Identity() string {
	return fmt.Sprintf("pmake|%+v", b.opt)
}

// Options returns the resolved options.
func (b *Benchmark) Options() Options { return b.opt }

// fileCost returns the deterministic compile cost of file i.
func (b *Benchmark) fileCost(i int) float64 {
	o := b.opt
	return xrand.New(o.TreeSeed*1000003+uint64(i)).LogNormal(o.CompileCycles, o.CompileCV)
}

// Run implements workload.Workload. The primary metric is the build time
// in seconds (lower is better).
func (b *Benchmark) Run(pl *workload.Platform) workload.Result {
	o := b.opt
	env := pl.Env
	jobs := o.Jobs
	if jobs <= 0 {
		jobs = pl.Config.Fast + pl.Config.Slow
	}

	work := sim.NewQueue[int](env)
	wg := sim.NewWaitGroup(env)
	var finish simtime.Time

	for j := 0; j < jobs; j++ {
		env.Go(fmt.Sprintf("cc-%d", j), func(p *sim.Proc) {
			for {
				i, ok := work.Get(p)
				if !ok {
					return
				}
				cost := b.fileCost(i)
				p.ComputeMem(cost*(1-o.MemFraction),
					simtime.Duration(cost*o.MemFraction/cpu.BaseHz))
				wg.Done()
			}
		})
	}

	serial := func(p *sim.Proc, cycles float64) {
		p.ComputeMem(cycles*(1-o.SerialMemFraction),
			simtime.Duration(cycles*o.SerialMemFraction/cpu.BaseHz))
	}
	env.Go("make", func(p *sim.Proc) {
		serial(p, o.ParseCycles)
		wg.Add(o.Files)
		for i := 0; i < o.Files; i++ {
			work.Put(i)
		}
		wg.Wait(p)
		work.Close()
		serial(p, o.LinkCycles)
		finish = p.Now()
	})
	env.Run()

	return workload.Result{
		Metric:         "build time (s)",
		Value:          float64(finish),
		HigherIsBetter: false,
	}
}

func init() {
	workload.Register("pmake", func() workload.Workload { return New(Options{}) })
}
