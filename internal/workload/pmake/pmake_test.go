package pmake

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/stats"
	"asmp/internal/workload"
)

func runOnce(t *testing.T, b *Benchmark, cfgName string, seed uint64) workload.Result {
	t.Helper()
	pl := workload.NewPlatform(cpu.MustParseConfig(cfgName), sched.Defaults(sched.PolicyNaive), seed)
	defer pl.Close()
	return b.Run(pl)
}

func sample(t *testing.T, b *Benchmark, cfgName string, runs int) *stats.Sample {
	t.Helper()
	s := &stats.Sample{}
	for i := 0; i < runs; i++ {
		s.Add(runOnce(t, b, cfgName, uint64(80+i)).Value)
	}
	return s
}

func TestDefaultsAndRegistry(t *testing.T) {
	b := New(Options{})
	o := b.Options()
	if o.Files == 0 || o.LinkCycles == 0 {
		t.Fatalf("defaults: %+v", o)
	}
	if b.Name() != "pmake" {
		t.Fatal("name")
	}
	if _, err := workload.New("pmake"); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDeterministic(t *testing.T) {
	b := New(Options{})
	if b.fileCost(5) != b.fileCost(5) {
		t.Fatal("file cost not deterministic")
	}
	if b.fileCost(5) == b.fileCost(6) {
		t.Fatal("files should differ in cost")
	}
}

func TestStableAcrossRuns(t *testing.T) {
	// Figure 9(b): stable on every configuration.
	b := New(Options{})
	for _, cfg := range []string{"4f-0s", "2f-2s/8", "1f-3s/4"} {
		// A little tail noise is inherent to dynamic job dispatch; the
		// paper's "stable" bars would not resolve below a few percent.
		if cov := sample(t, b, cfg, 3).CoV(); cov > 0.035 {
			t.Errorf("%s CoV %.4f, want < 0.035", cfg, cov)
		}
	}
}

func TestScalable(t *testing.T) {
	b := New(Options{})
	prev := 0.0
	for _, cfg := range []string{"4f-0s", "2f-2s/4", "1f-3s/8", "0f-4s/8"} {
		v := sample(t, b, cfg, 1).Mean()
		if v <= prev {
			t.Fatalf("build time should grow as power shrinks: %s gave %.2f after %.2f", cfg, v, prev)
		}
		prev = v
	}
}

func TestFastCoreHelpsSerialPortions(t *testing.T) {
	// §3.7: one fast processor significantly improves performance over
	// all-slow systems because it can serve the serial head and tail.
	b := New(Options{})
	oneFast := sample(t, b, "1f-3s/8", 1).Mean()
	allSlow := sample(t, b, "0f-4s/4", 1).Mean()
	if oneFast >= allSlow {
		t.Fatalf("1f-3s/8 (%.2fs) should beat 0f-4s/4 (%.2fs)", oneFast, allSlow)
	}
}

func TestAsymmetricBeatsMidpoint(t *testing.T) {
	// Summary point 3: 2f-2s/8 does better than the midpoint of 4f-0s
	// and 0f-4s/8.
	b := New(Options{})
	fast := sample(t, b, "4f-0s", 1).Mean()
	asym := sample(t, b, "2f-2s/8", 1).Mean()
	slow := sample(t, b, "0f-4s/8", 1).Mean()
	if mid := (fast + slow) / 2; asym >= mid {
		t.Fatalf("2f-2s/8 (%.2fs) should beat the midpoint (%.2fs)", asym, mid)
	}
}

func TestJobsOverride(t *testing.T) {
	// make -j1 on a 4-way machine must be slower than -j4.
	j1 := runOnce(t, New(Options{Jobs: 1}), "4f-0s", 1).Value
	j4 := runOnce(t, New(Options{}), "4f-0s", 1).Value
	if j1 <= 2*j4 {
		t.Fatalf("-j1 (%.2fs) should be far slower than -j4 (%.2fs)", j1, j4)
	}
}

func TestDeterministic(t *testing.T) {
	b := New(Options{})
	if a, c := runOnce(t, b, "3f-1s/4", 9).Value, runOnce(t, b, "3f-1s/4", 9).Value; a != c {
		t.Fatalf("same seed: %v vs %v", a, c)
	}
}
