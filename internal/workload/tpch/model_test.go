package tpch

import (
	"math"
	"testing"

	"asmp/internal/sched"
)

// TestFragmentCountByOptimization: aggressive optimization fuses
// operators into fewer fragments.
func TestFragmentCountByOptimization(t *testing.T) {
	if New(Options{Optimization: 7}).Options().fragmentCount() >=
		New(Options{Optimization: 2}).Options().fragmentCount() {
		t.Fatal("opt-7 plans should have fewer fragments than opt-2 plans")
	}
	b := New(Options{Optimization: 7})
	if got := len(b.fragmentShares(1)); got != b.Options().fragmentCount() {
		t.Fatalf("shares length %d != fragmentCount %d", got, b.Options().fragmentCount())
	}
}

// TestFragmentSharesNormalised: shares are a probability distribution.
func TestFragmentSharesNormalised(t *testing.T) {
	for _, opt := range []int{1, 2, 5, 7} {
		b := New(Options{Optimization: opt})
		for q := 1; q <= NumQueries; q++ {
			sum := 0.0
			for _, s := range b.fragmentShares(q) {
				if s < 0 {
					t.Fatalf("opt %d q %d: negative share", opt, q)
				}
				sum += s
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("opt %d q %d: shares sum to %v", opt, q, sum)
			}
		}
	}
}

// TestRunCorrelationAcrossQueries: the coordinator and agent bindings
// are per-run, so per-query runtimes within one run move together —
// a run that is slow on query 1 is slow on query 18 too. Verified via
// the correlation of per-query extras across runs.
func TestRunCorrelationAcrossQueries(t *testing.T) {
	b := New(Options{})
	var total, q01, q18 []float64
	for seed := uint64(0); seed < 12; seed++ {
		res := runOnce(t, b, "2f-2s/8", sched.PolicyNaive, 200+seed)
		total = append(total, res.Value)
		q01 = append(q01, res.Extra("query_01_s"))
		q18 = append(q18, res.Extra("query_18_s"))
	}
	// The runs are bimodal (coordinator on a fast vs slow core), so test
	// cluster membership directly: every query must be slower in the
	// slow-total cluster than in the fast-total cluster, on average.
	tMin, tMax := total[0], total[0]
	for _, v := range total {
		if v < tMin {
			tMin = v
		}
		if v > tMax {
			tMax = v
		}
	}
	mid := (tMin + tMax) / 2
	clusterMeans := func(q []float64) (fast, slow float64) {
		nf, ns := 0, 0
		for i, v := range q {
			if total[i] < mid {
				fast += v
				nf++
			} else {
				slow += v
				ns++
			}
		}
		if nf == 0 || ns == 0 {
			t.Skip("all runs fell in one cluster for this seed lane")
		}
		return fast / float64(nf), slow / float64(ns)
	}
	for name, q := range map[string][]float64{"q01": q01, "q18": q18} {
		f, sl := clusterMeans(q)
		if sl <= f {
			t.Fatalf("%s should be slower in slow-coordinator runs: fast-cluster %.3f vs slow-cluster %.3f", name, f, sl)
		}
	}
}

// TestSymmetricRunsUncorrelatedNoise: on a symmetric machine the same
// correlation collapses toward noise (bindings are irrelevant there).
func TestSymmetricNoiseFloor(t *testing.T) {
	b := New(Options{})
	s := sample(t, b, "0f-4s/4", sched.PolicyNaive, 6)
	if cov := s.CoV(); cov > 0.02 {
		t.Fatalf("symmetric power-run CoV %.4f above the noise floor", cov)
	}
}

// TestMemFractionSoftensSlowdown: a compute-only configuration slows the
// full 8x on 1/8 cores; the default memory share softens it to ~4.15x.
func TestMemFractionSoftensSlowdown(t *testing.T) {
	compute := New(Options{MemFraction: 1e-9})
	def := New(Options{})
	rc := runOnce(t, compute, "0f-4s/8", sched.PolicyNaive, 1).Value /
		runOnce(t, compute, "4f-0s", sched.PolicyNaive, 1).Value
	rd := runOnce(t, def, "0f-4s/8", sched.PolicyNaive, 1).Value /
		runOnce(t, def, "4f-0s", sched.PolicyNaive, 1).Value
	if rc < 7.5 || rc > 8.5 {
		t.Fatalf("compute-only slowdown %.2f, want ~8", rc)
	}
	if rd > rc-2 {
		t.Fatalf("memory share should soften the slowdown: %.2f vs %.2f", rd, rc)
	}
}

// TestQueryWeightsShape: the heavy queries (1, 9, 18, 21) must actually
// be the heavy ones in the model.
func TestQueryWeightsShape(t *testing.T) {
	if len(queryWeights) != NumQueries {
		t.Fatalf("weights for %d queries", len(queryWeights))
	}
	heavy := map[int]bool{1: true, 9: true, 18: true, 21: true}
	for q := 1; q <= NumQueries; q++ {
		w := queryWeights[q-1]
		if heavy[q] && w < 2.0 {
			t.Errorf("query %d should be heavy, weight %v", q, w)
		}
		if !heavy[q] && w >= 2.0 {
			t.Errorf("query %d should be light, weight %v", q, w)
		}
	}
}

// TestPowerRunSumsQueries: the power-run runtime equals the sum of the
// per-query runtimes (serial execution).
func TestPowerRunSumsQueries(t *testing.T) {
	b := New(Options{})
	res := runOnce(t, b, "3f-1s/4", sched.PolicyNaive, 5)
	sum := 0.0
	for q := 1; q <= NumQueries; q++ {
		sum += res.Extra(queryKey(q))
	}
	if math.Abs(sum-res.Value) > 1e-6 {
		t.Fatalf("sum of queries %.4f != power run %.4f", sum, res.Value)
	}
}

func queryKey(q int) string {
	if q < 10 {
		return "query_0" + string(rune('0'+q)) + "_s"
	}
	return "query_" + string(rune('0'+q/10)) + string(rune('0'+q%10)) + "_s"
}
