// Package tpch models the TPC-H power run on a DB2-style database server
// (§3.3 of the paper): 22 decision-support queries executed serially by
// a single user, each parallelised into sub-queries according to the
// server's intra-query parallelization degree and shaped by its
// optimization degree.
//
// Two properties of DB2 drive the paper's findings and are modelled
// directly:
//
//   - The server binds its own worker processes to processors and
//     dispatches query fragments onto them itself, so the kernel
//     scheduler — aware or not — cannot rebalance a query. This is why
//     the paper's kernel fix was ineffective for TPC-H.
//
//   - The query plan is deterministic for a given (query, optimization
//     degree): a highly optimised plan has skewed fragments (specialised
//     operators), while a low-degree plan is uniform but does more total
//     work. Which *fragment* lands on which *core* varies run to run
//     with the server's dispatch order. Skewed fragments on unequal
//     cores make the critical path placement-dependent — the instability
//     of Figures 4 and 5 — while uniform fragments are insensitive to
//     placement, which is why lowering the optimization degree restored
//     stability at the cost of raw speed.
package tpch

import (
	"fmt"
	"strconv"

	"asmp/internal/cpu"
	"asmp/internal/sim"
	"asmp/internal/simtime"
	"asmp/internal/workload"
	"asmp/internal/xrand"
)

// NumQueries is the TPC-H query count.
const NumQueries = 22

// queryWeights are the relative base costs of queries 1..22 (index 0 is
// query 1). They loosely follow the published relative runtimes of the
// suite: a few heavy queries (1, 9, 18, 21) and many light ones.
var queryWeights = []float64{
	3.0, 0.4, 1.2, 0.8, 1.1, 0.5, 1.0, 1.1, 2.6, 1.0, 0.6,
	0.9, 1.4, 0.7, 0.8, 0.9, 1.3, 2.2, 1.0, 1.1, 2.4, 0.7,
}

// Options parameterises a TPC-H run.
type Options struct {
	// Parallelization is DB2's intra-query parallelization degree: the
	// number of sub-queries each query splits into (the paper uses 1, 4
	// and 8).
	Parallelization int
	// Optimization is DB2's query optimization degree, 1..7. Higher
	// degrees produce faster but more skewed plans.
	Optimization int
	// Queries restricts the power run to specific queries (1-based); nil
	// runs all 22. Figure 4(b) uses Queries = []int{3}.
	Queries []int
	// BaseQueryCycles scales the whole suite: the cost of a weight-1.0
	// query at optimization degree 7, in fast-core cycles.
	BaseQueryCycles float64
	// SerialFraction is the per-query share of work that cannot be
	// parallelised (plan generation, final aggregation).
	SerialFraction float64
	// MemFraction is the share of query time stalled on the memory
	// system. Decision-support scans are bandwidth-bound, and the
	// paper's duty-cycle modulation does not slow memory, so this
	// portion costs the same on every core.
	MemFraction float64
	// CostCV is the small run-to-run execution-cost noise (buffer-pool
	// and I/O state). On a symmetric machine it averages out; on an
	// asymmetric machine it perturbs which bound agent pulls the large
	// tail fragments, which amplifies it into the Figure-4 instability.
	CostCV float64
}

// withDefaults fills unset fields with the study's standard values.
func (o Options) withDefaults() Options {
	if o.Parallelization == 0 {
		o.Parallelization = 4
	}
	if o.Optimization == 0 {
		o.Optimization = 7
	}
	if o.BaseQueryCycles == 0 {
		o.BaseQueryCycles = 2.8e9 // one second on a fast core per weight unit
	}
	if o.SerialFraction == 0 {
		// The serial share (plan generation, final aggregation) grows
		// with the optimization degree: exhaustive join enumeration and
		// aggressive aggregation strategies are coordinator work.
		f := float64(o.Optimization-1) / 6
		o.SerialFraction = 0.002 + 0.138*f*f
	}
	if o.MemFraction == 0 {
		o.MemFraction = 0.55
	}
	if o.CostCV == 0 {
		o.CostCV = 0.08
	}
	return o
}

// validate panics on nonsensical options.
func (o Options) validate() {
	if o.Parallelization < 1 {
		panic("tpch: Parallelization must be >= 1")
	}
	if o.Optimization < 1 || o.Optimization > 7 {
		panic("tpch: Optimization must be in 1..7")
	}
	if o.MemFraction < 0 || o.MemFraction >= 1 {
		panic("tpch: MemFraction must be in [0, 1)")
	}
	for _, q := range o.Queries {
		if q < 1 || q > NumQueries {
			panic(fmt.Sprintf("tpch: query %d out of range", q))
		}
	}
}

// Benchmark is the TPC-H power-run workload.
type Benchmark struct {
	opt Options
}

// New returns a TPC-H workload with the given options.
func New(opt Options) *Benchmark {
	opt = opt.withDefaults()
	opt.validate()
	return &Benchmark{opt: opt}
}

// Name implements workload.Workload.
func (b *Benchmark) Name() string { return "tpch" }

// Identity implements workload.Identifier. The Queries slice renders by
// value, so equal query lists (in order) compare equal.
func (b *Benchmark) Identity() string {
	return fmt.Sprintf("tpch|%+v", b.opt)
}

// Options returns the resolved options.
func (b *Benchmark) Options() Options { return b.opt }

// planCost returns the total work of query q (1-based) at the configured
// optimization degree. Lower degrees execute less aggressive plans: up to
// 2.5x more work at degree 1.
func (b *Benchmark) planCost(q int) float64 {
	o := b.opt
	slowdown := 1 + 1.8*float64(7-o.Optimization)/6
	return queryWeights[q-1] * o.BaseQueryCycles * slowdown
}

// fragmentCount is how many plan fragments the optimizer produces for a
// query: a property of the plan, independent of how many sub-agents
// execute it. Aggressive optimization fuses operators into fewer, larger
// (and more heterogeneous) fragments; low degrees leave many small
// uniform pieces. Agents pull fragments on demand, so when the degree of
// parallelism approaches the fragment count, the pull degenerates into a
// static assignment and placement luck dominates — the reason Figure
// 5(a)'s degree-8 runs vary more than degree-4 ones.
func (o Options) fragmentCount() int {
	return 12 + 8*(7-o.Optimization)
}

// fragmentShares returns the deterministic fragment-size distribution of
// query q's plan (fragmentCount pieces). The plan depends only on
// (query, optimization) — NOT on the run seed — which is what keeps
// symmetric configurations stable. Higher optimization degrees produce
// more skew.
func (b *Benchmark) fragmentShares(q int) []float64 {
	o := b.opt
	// Skew grows superlinearly with the optimization degree (aggressive
	// plans use specialised, unequal operators) and with the
	// parallelization degree (finer decomposition exposes more
	// heterogeneous fragments).
	optFactor := float64(o.Optimization-1) / 6
	skew := 0.9 * optFactor * optFactor
	rng := xrand.New(uint64(q)<<8 | uint64(o.Optimization))
	shares := make([]float64, o.fragmentCount())
	total := 0.0
	for i := range shares {
		w := 1.0
		if skew > 0 {
			w = rng.LogNormal(1, skew)
		}
		shares[i] = w
		total += w
	}
	for i := range shares {
		shares[i] /= total
	}
	return shares
}

// QueryList returns the 1-based queries this run executes.
func (b *Benchmark) QueryList() []int {
	if len(b.opt.Queries) > 0 {
		return append([]int(nil), b.opt.Queries...)
	}
	qs := make([]int, NumQueries)
	for i := range qs {
		qs[i] = i + 1
	}
	return qs
}

// work executes cost cycles of query work, splitting it into its
// compute-bound and memory-bound parts.
func (b *Benchmark) work(p *sim.Proc, cost float64) {
	mf := b.opt.MemFraction
	p.ComputeMem(cost*(1-mf), simtime.Duration(cost*mf/cpu.BaseHz))
}

// Run implements workload.Workload. The primary metric is the power-run
// runtime in seconds (lower is better).
func (b *Benchmark) Run(pl *workload.Platform) workload.Result {
	o := b.opt
	env := pl.Env
	ncores := pl.Config.Fast + pl.Config.Slow

	var finished simtime.Time
	perQuery := map[int]float64{}

	env.Go("db2-coordinator", func(p *sim.Proc) {
		// The coordinator is a DB2 server process too, bound by the
		// server at start-up to whichever processor its slot landed on.
		// Its serial work (plan generation, final aggregation — heavy at
		// high optimization degrees) therefore runs at one core's speed
		// for the WHOLE power run: a slow-core coordinator drags all 22
		// queries, the dominant source of Figure 4's run-to-run spread,
		// and one no kernel policy can touch.
		p.SetAffinity(sim.Single(p.Rand().Intn(ncores)))
		// The sub-agent process pool is created and bound ONCE at server
		// start: the first ncores agents cover every processor, surplus
		// agents land wherever their process happened to be created.
		// Because the pool outlives the power run, every query in the
		// run sees the same agent-to-core pairing — a bad pairing drags
		// the WHOLE run, which is why the paper's Figure 4(a) spreads are
		// so wide.
		agentCore := make([]int, o.Parallelization)
		perm := p.Rand().Perm(ncores)
		for i := range agentCore {
			if i < ncores {
				agentCore[i] = perm[i%ncores]
			} else {
				agentCore[i] = p.Rand().Intn(ncores)
			}
		}
		for _, q := range b.QueryList() {
			qStart := p.Now()
			cost := b.planCost(q)
			serial := cost * o.SerialFraction
			parallel := cost - serial

			// Plan generation and setup: serial work on the coordinator.
			b.work(p, serial/2)

			// DB2 executes the query with Parallelization sub-agent
			// processes, each *bound by the server* to a processor. The
			// agents pull plan fragments from a shared queue in plan
			// order — which is why query runtime tracks total compute
			// power. Execution costs carry a few percent of run-to-run
			// noise (buffer-pool and I/O state); on equal cores it
			// averages away, but on unequal cores it decides which core
			// pulls the plan's large fragments, and a big fragment
			// landing on a slow core gates the whole query. That
			// amplification is the Figure-4 instability, and no kernel
			// policy can touch it because the agents are bound.
			shares := b.fragmentShares(q)
			frags := sim.NewQueue[float64](env)
			for _, share := range shares {
				frags.Put(parallel * share * p.Rand().LogNormal(1, o.CostCV))
			}
			frags.Close()
			wg := sim.NewWaitGroup(env)
			wg.Add(o.Parallelization)
			for i := 0; i < o.Parallelization; i++ {
				core := agentCore[i]
				// Same bytes as fmt.Sprintf("db2-agent-q%d-%d", q, i)
				// without the boxing: agent spawn is the workload's
				// hottest allocation site.
				name := "db2-agent-q" + strconv.Itoa(q) + "-" + strconv.Itoa(i)
				env.Go(name, func(p *sim.Proc) {
					p.SetAffinity(sim.Single(core))
					for {
						frag, ok := frags.Get(p)
						if !ok {
							break
						}
						b.work(p, frag)
					}
					wg.Done()
				})
			}
			wg.Wait(p)

			// Final aggregation: serial again.
			b.work(p, serial/2)
			perQuery[q] = float64(p.Now() - qStart)
		}
		finished = p.Now()
	})
	env.Run()

	res := workload.Result{
		Metric:         "power-run runtime (s)",
		Value:          float64(finished),
		HigherIsBetter: false,
	}
	for q, t := range perQuery {
		// Same bytes as fmt.Sprintf("query_%02d_s", q): q is 1..22.
		qs := strconv.Itoa(q)
		if q < 10 {
			qs = "0" + qs
		}
		res.AddExtra("query_"+qs+"_s", t)
	}
	return res
}

func init() {
	workload.Register("tpch", func() workload.Workload { return New(Options{}) })
}
