package tpch

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/stats"
	"asmp/internal/workload"
)

func runOnce(t *testing.T, b *Benchmark, cfgName string, policy sched.Policy, seed uint64) workload.Result {
	t.Helper()
	pl := workload.NewPlatform(cpu.MustParseConfig(cfgName), sched.Defaults(policy), seed)
	defer pl.Close()
	return b.Run(pl)
}

func sample(t *testing.T, b *Benchmark, cfgName string, policy sched.Policy, runs int) *stats.Sample {
	t.Helper()
	s := &stats.Sample{}
	for i := 0; i < runs; i++ {
		s.Add(runOnce(t, b, cfgName, policy, uint64(100+i)).Value)
	}
	return s
}

func TestDefaults(t *testing.T) {
	b := New(Options{})
	o := b.Options()
	if o.Parallelization != 4 || o.Optimization != 7 {
		t.Fatalf("defaults: %+v", o)
	}
	if b.Name() != "tpch" {
		t.Fatal("name")
	}
	if len(b.QueryList()) != NumQueries {
		t.Fatal("query list")
	}
}

func TestValidation(t *testing.T) {
	bad := []Options{
		{Parallelization: -1},
		{Optimization: 8},
		{Queries: []int{0}},
		{Queries: []int{23}},
	}
	for i, o := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("options %d did not panic", i)
				}
			}()
			New(o)
		}()
	}
}

func TestQuerySubset(t *testing.T) {
	b := New(Options{Queries: []int{3}})
	if qs := b.QueryList(); len(qs) != 1 || qs[0] != 3 {
		t.Fatalf("QueryList = %v", qs)
	}
	res := runOnce(t, b, "4f-0s", sched.PolicyNaive, 1)
	if res.Value <= 0 {
		t.Fatal("no runtime")
	}
	if res.Extra("query_03_s") <= 0 {
		t.Fatal("per-query extra missing")
	}
}

func TestPlanDeterministicAcrossRuns(t *testing.T) {
	b := New(Options{})
	a := b.fragmentShares(5)
	c := b.fragmentShares(5)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("plan not deterministic")
		}
	}
}

func TestHigherOptimizationSkews(t *testing.T) {
	spread := func(opt int) float64 {
		b := New(Options{Optimization: opt})
		s := stats.NewSample(b.fragmentShares(1)...)
		for q := 2; q <= NumQueries; q++ {
			s.AddAll(b.fragmentShares(q))
		}
		return s.CoV()
	}
	if spread(7) <= spread(2) {
		t.Fatalf("opt 7 skew %.3f should exceed opt 2 skew %.3f", spread(7), spread(2))
	}
}

func TestLowOptimizationSlower(t *testing.T) {
	hi := New(Options{Optimization: 7})
	lo := New(Options{Optimization: 2})
	h := runOnce(t, hi, "4f-0s", sched.PolicyNaive, 1).Value
	l := runOnce(t, lo, "4f-0s", sched.PolicyNaive, 1).Value
	if l <= h*1.5 {
		t.Fatalf("opt-2 runtime %.1f should be well above opt-7 %.1f", l, h)
	}
}

func TestSymmetricStableAsymmetricUnstable(t *testing.T) {
	b := New(Options{})
	sym := sample(t, b, "0f-4s/8", sched.PolicyNaive, 4)
	asym := sample(t, b, "2f-2s/8", sched.PolicyNaive, 6)
	if cov := sym.CoV(); cov > 0.02 {
		t.Fatalf("symmetric CoV = %.4f, want < 0.02", cov)
	}
	if cov := asym.CoV(); cov < 0.05 {
		t.Fatalf("asymmetric CoV = %.4f, want > 0.05 (Figure 4 instability)", cov)
	}
}

func TestKernelFixIneffective(t *testing.T) {
	// The paper: DB2 binds its own processes, so the asymmetry-aware
	// kernel does not remove the instability.
	b := New(Options{})
	aware := sample(t, b, "2f-2s/8", sched.PolicyAsymmetryAware, 6)
	if cov := aware.CoV(); cov < 0.05 {
		t.Fatalf("aware-kernel CoV = %.4f; binding should defeat the kernel fix", cov)
	}
}

func TestHigherParallelizationMoreVariance(t *testing.T) {
	p4 := New(Options{Parallelization: 4})
	p8 := New(Options{Parallelization: 8})
	v4 := sample(t, p4, "2f-2s/8", sched.PolicyNaive, 8).CoV()
	v8 := sample(t, p8, "2f-2s/8", sched.PolicyNaive, 8).CoV()
	if v8 <= v4 {
		t.Fatalf("Figure 5(a): par-8 CoV %.4f should exceed par-4 CoV %.4f", v8, v4)
	}
}

func TestLowOptimizationStable(t *testing.T) {
	// Figure 5(b): dropping the optimization degree removes most of the
	// instability.
	hi := sample(t, New(Options{Optimization: 7}), "2f-2s/8", sched.PolicyNaive, 6).CoV()
	lo := sample(t, New(Options{Optimization: 2}), "2f-2s/8", sched.PolicyNaive, 6).CoV()
	if lo >= hi/2 {
		t.Fatalf("opt-2 CoV %.4f should be far below opt-7 CoV %.4f", lo, hi)
	}
}

func TestNoParallelizationBimodal(t *testing.T) {
	// §3.3.1: with intra-query parallelization off, a query shows two
	// distinct runtimes — fast-core or slow-core execution.
	b := New(Options{Parallelization: 1, Queries: []int{3}})
	s := sample(t, b, "1f-3s/8", sched.PolicyNaive, 12)
	if s.Max() < 3*s.Min() {
		t.Fatalf("expected bimodal runtimes, got [%v, %v]", s.Min(), s.Max())
	}
}

func TestScalesWithComputePower(t *testing.T) {
	// With the default 55% memory-bound share, a 1/8-duty core slows
	// queries by 0.45*8 + 0.55 = 4.15x, not 8x — duty-cycle modulation
	// does not touch the memory system.
	b := New(Options{})
	fast := sample(t, b, "4f-0s", sched.PolicyNaive, 1).Mean()
	slow := sample(t, b, "0f-4s/8", sched.PolicyNaive, 1).Mean()
	if ratio := slow / fast; ratio < 3.5 || ratio > 5 {
		t.Fatalf("0f-4s/8 vs 4f-0s runtime ratio %.2f, want ~4.15", ratio)
	}
}

func TestRegistered(t *testing.T) {
	w, err := workload.New("tpch")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "tpch" {
		t.Fatal("registry")
	}
}
