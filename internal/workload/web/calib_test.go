package web

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/stats"
	"asmp/internal/workload"
)

func runOnce(t *testing.T, b *Benchmark, cfgName string, policy sched.Policy, seed uint64) workload.Result {
	t.Helper()
	pl := workload.NewPlatform(cpu.MustParseConfig(cfgName), sched.Defaults(policy), seed)
	defer pl.Close()
	return b.Run(pl)
}

func sample(t *testing.T, b *Benchmark, cfgName string, policy sched.Policy, runs int) *stats.Sample {
	t.Helper()
	s := &stats.Sample{}
	for i := 0; i < runs; i++ {
		s.Add(runOnce(t, b, cfgName, policy, uint64(300+7*i)).Value)
	}
	return s
}

func TestCalib(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	cfgs := []string{"4f-0s", "3f-1s/8", "2f-2s/8", "0f-4s/4", "0f-4s/8"}
	for _, c := range []struct {
		name string
		b    *Benchmark
		pol  sched.Policy
	}{
		{"apache-light naive", New(Options{Server: Apache, Load: LightLoad}), sched.PolicyNaive},
		{"apache-heavy naive", New(Options{Server: Apache, Load: HeavyLoad}), sched.PolicyNaive},
		{"apache-light aware", New(Options{Server: Apache, Load: LightLoad}), sched.PolicyAsymmetryAware},
		{"apache-light fine50", New(Options{Server: Apache, Load: LightLoad, MaxRequestsPerChild: 50}), sched.PolicyNaive},
		{"zeus-light naive", New(Options{Server: Zeus, Load: LightLoad}), sched.PolicyNaive},
		{"zeus-heavy naive", New(Options{Server: Zeus, Load: HeavyLoad}), sched.PolicyNaive},
		{"zeus-light aware", New(Options{Server: Zeus, Load: LightLoad}), sched.PolicyAsymmetryAware},
	} {
		for _, cfg := range cfgs {
			s := sample(t, c.b, cfg, c.pol, 6)
			t.Logf("%-22s %-8s mean=%8.0f cov=%.4f [%8.0f %8.0f]", c.name, cfg, s.Mean(), s.CoV(), s.Min(), s.Max())
		}
	}
}
