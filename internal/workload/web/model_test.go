package web

import (
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
	"asmp/internal/simtime"
	"asmp/internal/trace"
	"asmp/internal/workload"
)

// TestZeusProcessesBindDistinctCores: with as many event loops as cores,
// Zeus must cover every core exactly once (a permutation, not a random
// draw with collisions) — that is what keeps symmetric machines stable.
func TestZeusProcessesBindDistinctCores(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		pl := workload.NewPlatform(cpu.MustParseConfig("4f-0s"), sched.Defaults(sched.PolicyNaive), seed)
		buf := trace.New(1 << 16)
		pl.Sched.SetTracer(buf)
		b := New(Options{Server: Zeus, Load: LightLoad, Workers: 4,
			RampUp: 0.2 * simtime.Second, Window: 0.5 * simtime.Second})
		b.Run(pl)
		// Each zeus process must have dispatched on exactly one core.
		coreOf := map[string]map[int]bool{}
		for _, e := range buf.Events() {
			if e.Kind != trace.Dispatch {
				continue
			}
			if len(e.ProcName) >= 4 && e.ProcName[:4] == "zeus" {
				if coreOf[e.ProcName] == nil {
					coreOf[e.ProcName] = map[int]bool{}
				}
				coreOf[e.ProcName][e.Core] = true
			}
		}
		used := map[int]bool{}
		for name, cores := range coreOf {
			if len(cores) != 1 {
				t.Fatalf("seed %d: %s ran on %d cores", seed, name, len(cores))
			}
			for c := range cores {
				if used[c] {
					t.Fatalf("seed %d: two zeus processes on core %d", seed, c)
				}
				used[c] = true
			}
		}
		if len(coreOf) != 4 {
			t.Fatalf("seed %d: %d zeus processes dispatched, want 4", seed, len(coreOf))
		}
		pl.Close()
	}
}

// TestApacheRecyclingForkCount: with MaxRequestsPerChild=n, the fork
// count must roughly equal completed-requests/n (minus the initial pool
// and refill-lag losses).
func TestApacheRecyclingForkCount(t *testing.T) {
	pl := workload.NewPlatform(cpu.MustParseConfig("4f-0s"), sched.Defaults(sched.PolicyNaive), 1)
	defer pl.Close()
	b := New(Options{Server: Apache, Load: LightLoad, MaxRequestsPerChild: 200})
	res := b.Run(pl)
	total := res.Value * float64(b.Options().Window)
	forks := res.Extra("forks")
	expect := total / 200
	if forks < expect*0.5 || forks > expect*1.3 {
		t.Fatalf("forks %.0f, expected near %.0f for %d requests", forks, expect, int(total))
	}
}

// TestNoRecyclingNoForks: at the default 5000-request budget a short run
// recycles almost nobody.
func TestNoRecyclingNoForks(t *testing.T) {
	pl := workload.NewPlatform(cpu.MustParseConfig("0f-4s/8"), sched.Defaults(sched.PolicyNaive), 1)
	defer pl.Close()
	b := New(Options{Server: Apache, Load: LightLoad})
	res := b.Run(pl)
	if res.Extra("forks") > 3 {
		t.Fatalf("unexpected forks: %v", res.Extra("forks"))
	}
}

// TestThinkTimeCapsLightLoad: under light load, throughput is bounded by
// concurrency/think-time no matter how fast the machine is.
func TestThinkTimeCapsLightLoad(t *testing.T) {
	b := New(Options{Server: Apache, Load: LightLoad})
	o := b.Options()
	cap := float64(o.Concurrency) / float64(o.ThinkTime)
	res := runOnce(t, b, "4f-0s", sched.PolicyNaive, 1)
	if res.Value >= cap {
		t.Fatalf("throughput %.0f at or above the think-time cap %.0f", res.Value, cap)
	}
	if res.Value < cap*0.75 {
		t.Fatalf("throughput %.0f too far below the cap %.0f on an idle fast machine", res.Value, cap)
	}
}

// TestHeavyLoadSaturates: under heavy load on a strong machine, busy
// time approaches elapsed time on every core.
func TestHeavyLoadSaturates(t *testing.T) {
	pl := workload.NewPlatform(cpu.MustParseConfig("2f-2s/8"), sched.Defaults(sched.PolicyNaive), 1)
	defer pl.Close()
	b := New(Options{Server: Apache, Load: HeavyLoad})
	b.Run(pl)
	elapsed := float64(pl.Env.Now())
	for i, busy := range pl.Sched.Stats().BusySeconds {
		if busy < 0.9*elapsed {
			t.Fatalf("core %d only %.0f%% busy under heavy load", i, 100*busy/elapsed)
		}
	}
}

// TestConcurrencyOverride: explicit Concurrency wins over the Load
// preset.
func TestConcurrencyOverride(t *testing.T) {
	b := New(Options{Server: Apache, Load: HeavyLoad, Concurrency: 3})
	if b.Options().Concurrency != 3 {
		t.Fatalf("override lost: %d", b.Options().Concurrency)
	}
}

// TestZeusClientPartitionRoundRobin: with 3 processes and 10 clients the
// partition is (4, 3, 3) — deterministic, never rebalanced.
func TestZeusClientPartition(t *testing.T) {
	// Observable consequence: a single very unlucky binding cannot be
	// fixed by adding runtime — throughput settles, it doesn't converge
	// toward the symmetric value. Compare a short and long window on the
	// same seed: the per-second rate must be stable.
	short := New(Options{Server: Zeus, Load: LightLoad, Window: 2 * simtime.Second})
	long := New(Options{Server: Zeus, Load: LightLoad, Window: 6 * simtime.Second})
	a := runOnce(t, short, "2f-2s/8", sched.PolicyNaive, 44).Value
	b := runOnce(t, long, "2f-2s/8", sched.PolicyNaive, 44).Value
	if b < a*0.95 || b > a*1.05 {
		t.Fatalf("per-second rate drifted with window length: %.0f vs %.0f", a, b)
	}
}

// TestWorkConservationWeb: completed requests never exceed what the
// machine could physically serve.
func TestWorkConservationWeb(t *testing.T) {
	for _, cfgName := range []string{"4f-0s", "2f-2s/8"} {
		pl := workload.NewPlatform(cpu.MustParseConfig(cfgName), sched.Defaults(sched.PolicyNaive), 2)
		b := New(Options{Server: Apache, Load: HeavyLoad})
		res := b.Run(pl)
		o := b.Options()
		capacity := cpu.MustParseConfig(cfgName).ComputePower() * cpu.BaseHz / o.RequestCycles
		if res.Value > capacity*1.02 {
			t.Fatalf("%s: %.0f req/s exceeds physical capacity %.0f", cfgName, res.Value, capacity)
		}
		pl.Close()
	}
}
