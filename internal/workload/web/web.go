// Package web models the two web servers of §3.4 and the
// ApacheBench-style closed-loop client driving them.
//
// Apache (pre-fork): a control process maintains a pool of worker
// processes. Workers race for connections on the accept queue — most
// recently idle first — so under light load a small, persistent subset
// of workers serves nearly all requests, and where the kernel happened
// to place those workers decides the run's throughput. After handling
// MaxRequestsPerChild requests a worker exits and the control process
// re-forks it on its (timer-driven) maintenance tick; setting the
// threshold very low is the paper's "fine-grained threading" experiment.
//
// Zeus (event-driven): a small fixed number of single-process event
// loops, each bound by the server itself to a processor, with
// connections assigned at accept time and never rebalanced. Because the
// binding and the connection partition are user-level decisions, no
// kernel policy can repair a bad pairing of busy event loops with slow
// cores — which is exactly the paper's finding that the asymmetry-aware
// kernel did not help Zeus.
package web

import (
	"fmt"

	"asmp/internal/sim"
	"asmp/internal/simtime"
	"asmp/internal/workload"
)

// Server selects the web-server model.
type Server int

const (
	// Apache is the pre-fork worker-pool server.
	Apache Server = iota
	// Zeus is the bound event-loop server.
	Zeus
)

// String implements fmt.Stringer.
func (s Server) String() string {
	switch s {
	case Apache:
		return "apache"
	case Zeus:
		return "zeus"
	default:
		return fmt.Sprintf("Server(%d)", int(s))
	}
}

// Load selects the two client regimes of the paper.
type Load int

const (
	// LightLoad is ApacheBench with 10 concurrent clients.
	LightLoad Load = iota
	// HeavyLoad is ApacheBench with 60 concurrent clients.
	HeavyLoad
)

// String implements fmt.Stringer.
func (l Load) String() string {
	switch l {
	case LightLoad:
		return "light"
	case HeavyLoad:
		return "heavy"
	default:
		return fmt.Sprintf("Load(%d)", int(l))
	}
}

// Options parameterises a web-server run.
type Options struct {
	// Server selects Apache or Zeus.
	Server Server
	// Load selects the client regime (overridden by Concurrency).
	Load Load
	// Concurrency overrides the load preset's client count when > 0.
	Concurrency int
	// ThinkTime is the client-side gap (network round trip plus client
	// work) between receiving a response and issuing the next request.
	ThinkTime simtime.Duration
	// RequestCycles is the CPU cost of serving one request.
	RequestCycles float64
	// RequestCV is the relative spread of request cost.
	RequestCV float64
	// Workers is the Apache pool size or the Zeus process count.
	Workers int
	// MaxRequestsPerChild recycles an Apache worker after that many
	// requests (5000 default; 50 is the fine-grained experiment).
	MaxRequestsPerChild int
	// ForkCycles is the CPU the control process burns re-forking a
	// worker.
	ForkCycles float64
	// SharedAcceptQueue disables HTTP keep-alive connection affinity for
	// Apache: clients race on a single accept queue instead of holding a
	// persistent connection to one worker. Used by the ablation bench.
	SharedAcceptQueue bool
	// RampUp and Window delimit measurement.
	RampUp simtime.Duration
	Window simtime.Duration
}

// withDefaults fills unset fields with the study's standard values.
func (o Options) withDefaults() Options {
	if o.Concurrency == 0 {
		if o.Load == HeavyLoad {
			o.Concurrency = 60
		} else {
			o.Concurrency = 10
		}
	}
	if o.ThinkTime == 0 {
		if o.Load == HeavyLoad {
			o.ThinkTime = 1 * simtime.Millisecond
		} else {
			o.ThinkTime = 3 * simtime.Millisecond
		}
	}
	if o.RequestCycles == 0 {
		if o.Server == Zeus {
			o.RequestCycles = 0.4e6
		} else {
			o.RequestCycles = 1e6
		}
	}
	if o.RequestCV == 0 {
		o.RequestCV = 0.15
	}
	if o.Workers == 0 {
		if o.Server == Zeus {
			o.Workers = 3
		} else {
			o.Workers = 8
		}
	}
	if o.MaxRequestsPerChild == 0 {
		o.MaxRequestsPerChild = 5000
	}
	if o.ForkCycles == 0 {
		o.ForkCycles = 3e6
	}
	if o.RampUp == 0 {
		o.RampUp = 1 * simtime.Second
	}
	if o.Window == 0 {
		o.Window = 3 * simtime.Second
	}
	return o
}

// Benchmark is the web-server workload.
type Benchmark struct {
	opt Options
}

// New returns a web workload with the given options.
func New(opt Options) *Benchmark { return &Benchmark{opt: opt.withDefaults()} }

// Name implements workload.Workload.
func (b *Benchmark) Name() string {
	return b.opt.Server.String()
}

// Identity implements workload.Identifier.
func (b *Benchmark) Identity() string {
	return fmt.Sprintf("web|%+v", b.opt)
}

// Options returns the resolved options.
func (b *Benchmark) Options() Options { return b.opt }

// request is one in-flight HTTP request; the worker wakes the client.
type request struct {
	client *sim.Proc
}

// Run implements workload.Workload. The primary metric is requests per
// second completed in the measurement window.
func (b *Benchmark) Run(pl *workload.Platform) workload.Result {
	switch b.opt.Server {
	case Zeus:
		return b.runZeus(pl)
	default:
		return b.runApache(pl)
	}
}

// runApache builds the pre-fork pool, the control process and the
// closed-loop clients.
//
// Clients hold persistent (keep-alive) connections, so each client is
// served by one worker process until that worker is recycled. The
// workers are ordinary kernel-scheduled processes: under the stock
// kernel their (sticky, random) placement decides every connection's
// service speed for the whole run — the Figure 6(a) instability — while
// the asymmetry-aware kernel can migrate them to fast cores and repair
// it, which is exactly what distinguishes Apache from Zeus in the paper.
func (b *Benchmark) runApache(pl *workload.Platform) workload.Result {
	o := b.opt
	env := pl.Env
	start, end := o.RampUp, o.RampUp+o.Window

	completed := 0
	forks := 0
	deficit := []int{} // queue indices awaiting a replacement worker

	// One connection queue per worker slot (keep-alive affinity), or a
	// single shared accept queue for the ablation.
	nq := o.Workers
	if o.SharedAcceptQueue {
		nq = 1
	}
	queues := make([]*sim.Queue[request], nq)
	for i := range queues {
		if o.SharedAcceptQueue {
			queues[i] = sim.NewAcceptQueue[request](env)
		} else {
			queues[i] = sim.NewQueue[request](env)
		}
	}

	worker := func(slot int) func(*sim.Proc) {
		return func(p *sim.Proc) {
			q := queues[slot%nq]
			served := 0
			for {
				req, ok := q.Get(p)
				if !ok {
					return
				}
				p.Compute(p.Rand().LogNormal(o.RequestCycles, o.RequestCV))
				if now := p.Now(); now >= start && now < end {
					completed++
				}
				env.Wake(req.client)
				served++
				if served >= o.MaxRequestsPerChild {
					deficit = append(deficit, slot)
					return
				}
			}
		}
	}
	for i := 0; i < o.Workers; i++ {
		env.Go(fmt.Sprintf("httpd-%d", i), worker(i))
	}

	// Control process: a timer-driven maintenance loop, like Apache's
	// once-per-interval pool upkeep. It re-forks at most a few workers
	// per tick, so very aggressive recycling is refill-rate limited no
	// matter how fast the machine is — the reason the fine-grained
	// configuration's throughput does not scale.
	const maintenance = 100 * simtime.Millisecond
	const maxForksPerTick = 4
	env.Go("httpd-control", func(p *sim.Proc) {
		for {
			p.Sleep(maintenance)
			n := len(deficit)
			if n > maxForksPerTick {
				n = maxForksPerTick
			}
			for i := 0; i < n; i++ {
				p.Compute(o.ForkCycles)
				slot := deficit[0]
				deficit = deficit[1:]
				forks++
				env.Go(fmt.Sprintf("httpd-refork-%d", forks), worker(slot))
			}
		}
	})

	b.runClients(pl, func(p *sim.Proc, client int) {
		queues[client%nq].Put(request{client: p})
		p.Block()
	})

	env.RunUntil(end)
	res := workload.Result{
		Metric:         "throughput (req/s)",
		Value:          float64(completed) / float64(o.Window),
		HigherIsBetter: true,
	}
	res.AddExtra("forks", float64(forks))
	return res
}

// runZeus builds the bound event loops and their private connection
// queues.
func (b *Benchmark) runZeus(pl *workload.Platform) workload.Result {
	o := b.opt
	env := pl.Env
	start, end := o.RampUp, o.RampUp+o.Window
	ncores := pl.Config.Fast + pl.Config.Slow
	rng := env.Rand().Split()

	completed := 0
	// Zeus binds each event loop to a processor itself. With as many
	// processes as cores this is a permutation — which process ends up
	// on which core is decided by the server at startup, out of the
	// kernel's hands.
	nproc := o.Workers
	perm := rng.Perm(ncores)
	queues := make([]*sim.Queue[request], nproc)
	for i := 0; i < nproc; i++ {
		queues[i] = sim.NewQueue[request](env)
		core := perm[i%ncores]
		q := queues[i]
		env.Go(fmt.Sprintf("zeus-%d", i), func(p *sim.Proc) {
			p.SetAffinity(sim.Single(core))
			for {
				req, ok := q.Get(p)
				if !ok {
					return
				}
				p.Compute(p.Rand().LogNormal(o.RequestCycles, o.RequestCV))
				if now := p.Now(); now >= start && now < end {
					completed++
				}
				env.Wake(req.client)
			}
		})
	}

	// Connections are distributed round-robin across the event loops —
	// Zeus's own user-level load balancing, which silently assumes all
	// processors are equal. The per-run randomness is purely which
	// process got bound to which core: exactly the pairing no kernel
	// policy can repair.
	b.runClients(pl, func(p *sim.Proc, client int) {
		queues[client%nproc].Put(request{client: p})
		p.Block()
	})

	env.RunUntil(end)
	return workload.Result{
		Metric:         "throughput (req/s)",
		Value:          float64(completed) / float64(o.Window),
		HigherIsBetter: true,
	}
}

// runClients spawns the closed-loop ApacheBench clients. issue submits
// one request on behalf of client i and returns when the response
// arrives.
func (b *Benchmark) runClients(pl *workload.Platform, issue func(p *sim.Proc, client int)) {
	o := b.opt
	for i := 0; i < o.Concurrency; i++ {
		i := i
		pl.Env.Go(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			for {
				issue(p, i)
				think := simtime.Duration(p.Rand().Range(0.8, 1.2)) * o.ThinkTime
				p.Sleep(think)
			}
		})
	}
}

func init() {
	workload.Register("apache", func() workload.Workload { return New(Options{Server: Apache}) })
	workload.Register("zeus", func() workload.Workload { return New(Options{Server: Zeus}) })
}
