package web

import (
	"testing"

	"asmp/internal/sched"
	"asmp/internal/workload"
)

func TestDefaults(t *testing.T) {
	a := New(Options{Server: Apache}).Options()
	if a.Concurrency != 10 || a.Workers != 8 || a.MaxRequestsPerChild != 5000 {
		t.Fatalf("apache defaults: %+v", a)
	}
	z := New(Options{Server: Zeus, Load: HeavyLoad}).Options()
	if z.Concurrency != 60 || z.Workers != 3 {
		t.Fatalf("zeus defaults: %+v", z)
	}
	if z.RequestCycles >= a.RequestCycles {
		t.Fatal("Zeus requests should be cheaper than Apache's")
	}
}

func TestNames(t *testing.T) {
	if New(Options{Server: Apache}).Name() != "apache" || New(Options{Server: Zeus}).Name() != "zeus" {
		t.Fatal("names")
	}
	if Apache.String() != "apache" || Zeus.String() != "zeus" || Server(9).String() == "" {
		t.Fatal("server strings")
	}
	if LightLoad.String() != "light" || HeavyLoad.String() != "heavy" || Load(9).String() == "" {
		t.Fatal("load strings")
	}
}

func TestRegistered(t *testing.T) {
	for _, n := range []string{"apache", "zeus"} {
		if _, err := workload.New(n); err != nil {
			t.Fatal(err)
		}
	}
}

func TestApacheSymmetricStable(t *testing.T) {
	b := New(Options{Server: Apache, Load: LightLoad})
	for _, cfg := range []string{"4f-0s", "0f-4s/8"} {
		if cov := sample(t, b, cfg, sched.PolicyNaive, 4).CoV(); cov > 0.02 {
			t.Errorf("%s CoV %.4f, want < 0.02", cfg, cov)
		}
	}
}

func TestApacheLightLoadUnstable(t *testing.T) {
	// Figure 6(a): light load on asymmetric machines is unstable under
	// the stock kernel.
	b := New(Options{Server: Apache, Load: LightLoad})
	if cov := sample(t, b, "2f-2s/8", sched.PolicyNaive, 8).CoV(); cov < 0.03 {
		t.Fatalf("2f-2s/8 light CoV %.4f, want > 0.03", cov)
	}
}

func TestApacheHeavyLoadStable(t *testing.T) {
	// §3.4.1: under heavy load every processor is always busy, so
	// throughput is a stable function of total compute power.
	b := New(Options{Server: Apache, Load: HeavyLoad})
	for _, cfg := range []string{"2f-2s/8", "3f-1s/8"} {
		if cov := sample(t, b, cfg, sched.PolicyNaive, 4).CoV(); cov > 0.02 {
			t.Errorf("heavy %s CoV %.4f, want < 0.02", cfg, cov)
		}
	}
}

func TestApacheAwareKernelFixes(t *testing.T) {
	// Figure 6(b): the asymmetry-aware kernel makes light-load runs
	// repeatable and recovers throughput.
	b := New(Options{Server: Apache, Load: LightLoad})
	naive := sample(t, b, "2f-2s/8", sched.PolicyNaive, 6)
	aware := sample(t, b, "2f-2s/8", sched.PolicyAsymmetryAware, 6)
	if cov := aware.CoV(); cov > 0.01 {
		t.Fatalf("aware CoV %.4f, want < 0.01", cov)
	}
	if aware.Mean() < naive.Mean() {
		t.Fatalf("aware mean %.0f below naive mean %.0f", aware.Mean(), naive.Mean())
	}
}

func TestApacheFineGrainedThreading(t *testing.T) {
	// Figure 6(b): recycling workers every 50 requests removes the
	// instability but costs throughput and stops it scaling.
	normal := New(Options{Server: Apache, Load: LightLoad})
	fine := New(Options{Server: Apache, Load: LightLoad, MaxRequestsPerChild: 50})
	nrm := sample(t, normal, "2f-2s/8", sched.PolicyNaive, 6)
	fg := sample(t, fine, "2f-2s/8", sched.PolicyNaive, 6)
	if fg.CoV() >= nrm.CoV() {
		t.Fatalf("fine-grained CoV %.4f should be below normal %.4f", fg.CoV(), nrm.CoV())
	}
	if fg.Mean() >= nrm.Mean() {
		t.Fatalf("fine-grained mean %.0f should cost throughput vs %.0f", fg.Mean(), nrm.Mean())
	}
	// "Does not scale": fine-grained throughput barely moves between the
	// strongest configs because the refill loop, not the CPUs, limits it.
	top := sample(t, fine, "4f-0s", sched.PolicyNaive, 2).Mean()
	mid := sample(t, fine, "2f-2s/8", sched.PolicyNaive, 2).Mean()
	if top > 1.25*mid {
		t.Fatalf("fine-grained should not scale: 4f-0s %.0f vs 2f-2s/8 %.0f", top, mid)
	}
}

func TestApacheForksCounted(t *testing.T) {
	b := New(Options{Server: Apache, Load: LightLoad, MaxRequestsPerChild: 50})
	res := runOnce(t, b, "4f-0s", sched.PolicyNaive, 1)
	if res.Extra("forks") <= 0 {
		t.Fatal("aggressive recycling should fork replacements")
	}
}

func TestZeusFasterThanApache(t *testing.T) {
	// §3.4.1: Zeus delivers substantially higher throughput (up to 2.5x).
	a := sample(t, New(Options{Server: Apache, Load: HeavyLoad}), "4f-0s", sched.PolicyNaive, 2).Mean()
	z := sample(t, New(Options{Server: Zeus, Load: HeavyLoad}), "4f-0s", sched.PolicyNaive, 2).Mean()
	if z < 1.5*a {
		t.Fatalf("Zeus heavy %.0f should be well above Apache heavy %.0f", z, a)
	}
}

func TestZeusUnstableBothLoads(t *testing.T) {
	// Figure 7: Zeus shows significant variance under light AND heavy
	// load on asymmetric machines.
	for _, load := range []Load{LightLoad, HeavyLoad} {
		b := New(Options{Server: Zeus, Load: load})
		if cov := sample(t, b, "2f-2s/8", sched.PolicyNaive, 8).CoV(); cov < 0.04 {
			t.Errorf("zeus %v 2f-2s/8 CoV %.4f, want > 0.04", load, cov)
		}
	}
}

func TestZeusSymmetricStable(t *testing.T) {
	for _, cfg := range []string{"4f-0s", "0f-4s/4", "0f-4s/8"} {
		b := New(Options{Server: Zeus, Load: HeavyLoad})
		if cov := sample(t, b, cfg, sched.PolicyNaive, 4).CoV(); cov > 0.02 {
			t.Errorf("zeus %s CoV %.4f, want < 0.02", cfg, cov)
		}
	}
}

func TestZeusKernelFixIneffective(t *testing.T) {
	// §3.4.1: the modified kernel scheduler "did not have any effect" on
	// Zeus — the server binds its own processes.
	b := New(Options{Server: Zeus, Load: LightLoad})
	naive := sample(t, b, "2f-2s/8", sched.PolicyNaive, 6)
	aware := sample(t, b, "2f-2s/8", sched.PolicyAsymmetryAware, 6)
	if aware.CoV() < naive.CoV()/2 {
		t.Fatalf("aware CoV %.4f should not fix Zeus (naive %.4f)", aware.CoV(), naive.CoV())
	}
}

func TestSharedAcceptQueueAblation(t *testing.T) {
	// Without keep-alive affinity, work spills across the whole pool and
	// the instability shrinks — the ablation that isolates the
	// connection-affinity mechanism.
	affinity := New(Options{Server: Apache, Load: LightLoad})
	shared := New(Options{Server: Apache, Load: LightLoad, SharedAcceptQueue: true})
	a := sample(t, affinity, "2f-2s/8", sched.PolicyNaive, 6).CoV()
	s := sample(t, shared, "2f-2s/8", sched.PolicyNaive, 6).CoV()
	if s >= a {
		t.Fatalf("shared-queue CoV %.4f should be below affinity CoV %.4f", s, a)
	}
}

func TestThroughputScales(t *testing.T) {
	// Heavy-load Apache throughput tracks compute power.
	b := New(Options{Server: Apache, Load: HeavyLoad})
	fast := sample(t, b, "4f-0s", sched.PolicyNaive, 1).Mean()
	slow := sample(t, b, "0f-4s/8", sched.PolicyNaive, 1).Mean()
	if r := fast / slow; r < 6.5 || r > 9.5 {
		t.Fatalf("heavy throughput ratio %.2f, want ~8", r)
	}
}

func TestDeterministic(t *testing.T) {
	b := New(Options{Server: Zeus, Load: HeavyLoad})
	a := runOnce(t, b, "2f-2s/8", sched.PolicyNaive, 77).Value
	c := runOnce(t, b, "2f-2s/8", sched.PolicyNaive, 77).Value
	if a != c {
		t.Fatalf("same seed: %v vs %v", a, c)
	}
}
