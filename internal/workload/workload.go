// Package workload defines the common contract every benchmark model in
// the study implements, plus a registry used by the command-line tools.
//
// A Workload is a *description* of a benchmark (its parameters); running
// it builds all simulated state from scratch on a fresh Platform, so the
// same Workload value can be run many times, concurrently from different
// goroutines, with different seeds and machine configurations.
package workload

import (
	"fmt"
	"sort"

	"asmp/internal/cpu"
	"asmp/internal/digest"
	"asmp/internal/sched"
	"asmp/internal/sim"
)

// Platform bundles the simulated machine a workload runs on.
type Platform struct {
	// Env is the simulation environment (fresh per run).
	Env *sim.Env
	// Sched is the OS scheduler model driving Env.
	Sched *sched.Scheduler
	// Config is the machine configuration, for workloads that size
	// themselves to the machine (e.g. PMAKE's -j).
	Config cpu.Config
}

// NewPlatform builds a fresh platform for one run: a new environment
// seeded with seed and a scheduler with the given options over the
// machine described by config.
func NewPlatform(config cpu.Config, opt sched.Options, seed uint64) *Platform {
	env := sim.NewEnv(seed)
	s := sched.New(env, config.Machine(), opt)
	return &Platform{Env: env, Sched: s, Config: config}
}

// Close releases the platform's resources (reaps simulated procs).
func (pl *Platform) Close() { pl.Env.Close() }

// Result is the outcome of a single workload run.
type Result struct {
	// Metric names the primary metric, e.g. "throughput (ops/s)".
	Metric string
	// Value is the primary metric's value.
	Value float64
	// HigherIsBetter tells analysis code which direction is good.
	HigherIsBetter bool
	// Extras holds secondary metrics by name (response-time percentiles,
	// GC counts, per-domain throughputs, ...).
	Extras map[string]float64
	// Digest is the deterministic run digest folded over the run's
	// identity, scheduler event stream and final metrics (see
	// internal/digest). Two runs of the same (workload, config, policy,
	// seed) must produce the same digest; core.VerifyDeterminism audits
	// exactly that. Zero for results not produced through core.Execute.
	Digest digest.Digest
	// Events is the digest state after the identity and event-stream
	// folds but before the final metrics fold: Digest equals Events
	// evolved by Hasher.Result over the metrics below. The disk result
	// cache (internal/resultcache) stores it so a read can recompute
	// Digest from the stored metrics and refuse any entry whose bytes
	// have drifted. Zero for results not produced through core.Execute
	// (journal-replayed cells included — they are never re-published).
	Events digest.Digest
}

// Extra returns a secondary metric (0 if absent).
func (r Result) Extra(name string) float64 { return r.Extras[name] }

// AddExtra records a secondary metric, allocating the map on first use.
func (r *Result) AddExtra(name string, v float64) {
	if r.Extras == nil {
		r.Extras = map[string]float64{}
	}
	r.Extras[name] = v
}

// Workload is a runnable benchmark description. Run must build all
// simulated state on pl and leave pl consumable (the caller closes it).
type Workload interface {
	// Name identifies the workload, e.g. "specjbb".
	Name() string
	// Run executes the benchmark once and reports its metrics.
	Run(pl *Platform) Result
}

// Identifier is implemented by workloads whose full parameterisation can
// be rendered as a stable string. Two workloads with equal Identity()
// values must be behaviourally identical: run on the same platform with
// the same seed they produce the same event stream, metrics and digest.
// core.Execute uses Identity to memoize repeated cells across figures;
// workloads that do not implement it are simply never memoized.
type Identifier interface {
	// Identity returns a stable, collision-free rendering of the
	// workload's name and every normalized option. It must not depend on
	// pointer addresses, map iteration order or any per-process state.
	Identity() string
}

// Factory builds a workload with default parameters.
type Factory func() Workload

var registry = map[string]Factory{}

// Register adds a workload factory under name. It panics on duplicates so
// registration bugs surface at init time.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration %q", name))
	}
	registry[name] = f
}

// New instantiates a registered workload by name.
func New(name string) (Workload, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered workloads in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
