package workload

import (
	"sort"
	"testing"

	"asmp/internal/cpu"
	"asmp/internal/sched"
)

type fakeWorkload struct{ name string }

func (f fakeWorkload) Name() string         { return f.name }
func (f fakeWorkload) Run(*Platform) Result { return Result{Metric: "x", Value: 1} }

func TestRegistry(t *testing.T) {
	Register("test-fake", func() Workload { return fakeWorkload{"test-fake"} })
	w, err := New("test-fake")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "test-fake" {
		t.Fatal("wrong workload")
	}
	if _, err := New("no-such"); err == nil {
		t.Fatal("unknown workload did not error")
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatal("Names not sorted")
	}
	found := false
	for _, n := range names {
		if n == "test-fake" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered name missing from Names")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register("test-dup", func() Workload { return fakeWorkload{"test-dup"} })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("test-dup", func() Workload { return fakeWorkload{"test-dup"} })
}

func TestNewPlatform(t *testing.T) {
	cfg := cpu.MustParseConfig("2f-2s/8")
	pl := NewPlatform(cfg, sched.Defaults(sched.PolicyNaive), 42)
	defer pl.Close()
	if pl.Env == nil || pl.Sched == nil {
		t.Fatal("platform incomplete")
	}
	if pl.Config != cfg {
		t.Fatal("config not preserved")
	}
	if pl.Sched.Machine().NumCores() != 4 {
		t.Fatal("machine mismatch")
	}
}

func TestResultExtras(t *testing.T) {
	var r Result
	if r.Extra("missing") != 0 {
		t.Fatal("missing extra should be 0")
	}
	r.AddExtra("a", 1.5)
	r.AddExtra("b", 2.5)
	if r.Extra("a") != 1.5 || r.Extra("b") != 2.5 {
		t.Fatal("extras lost")
	}
}
