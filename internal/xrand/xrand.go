// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator for the simulator. Every source of randomness in a
// simulation run derives from a single root seed, and independent
// subsystems obtain independent child streams via Split, so adding a new
// consumer of randomness in one module does not perturb the draws seen by
// any other module. This keeps experiments reproducible and diffable.
//
// The generator is SplitMix64 feeding xoshiro256**, a widely used
// combination with good statistical quality and a tiny state.
package xrand

import "math"

// Rand is a deterministic PRNG stream. It is not safe for concurrent use;
// the simulator is single-threaded by construction so this is never an
// issue in practice.
type Rand struct {
	s [4]uint64
}

// New returns a stream seeded from seed. Distinct seeds give independent
// streams; the same seed always gives the same sequence.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.seed(seed)
	return r
}

// seed initialises the xoshiro state from seed with SplitMix64, as
// recommended by the xoshiro authors; this avoids the all-zero state and
// decorrelates close seeds.
func (r *Rand) seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Split derives a child stream whose future output is independent of the
// parent's. The parent advances by one draw; calling Split repeatedly
// yields distinct children.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// SplitInto seeds dst as an independent child stream — identical to
// Split, but into caller-provided storage so hot spawn paths can batch
// their Rand allocations.
func (r *Rand) SplitInto(dst *Rand) {
	dst.seed(r.Uint64())
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stdev float64) float64 {
	return mean + stdev*r.NormFloat64()
}

// LogNormal returns a log-normal variate parameterised by the mean and
// coefficient of variation of the *resulting* distribution, which is the
// natural way to say "around mean, with cv relative spread".
func (r *Rand) LogNormal(mean, cv float64) float64 {
	if mean <= 0 {
		panic("xrand: LogNormal with non-positive mean")
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*r.NormFloat64())
}

// Exp returns an exponential variate with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("xrand: Exp with non-positive mean")
	}
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes a slice in place using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen index weighted by weights; weights must
// be non-negative and not all zero.
func (r *Rand) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("xrand: all-zero weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
