package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	// A child stream must not replay the parent's sequence, and two
	// children must differ from each other.
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	p0 := New(7)
	p0.Uint64() // advance like parent did for c1
	p0.Uint64() // and c2
	for i := 0; i < 100; i++ {
		v1, v2, vp := c1.Uint64(), c2.Uint64(), p0.Uint64()
		if v1 == v2 || v1 == vp || v2 == vp {
			t.Fatalf("correlated draws at %d", i)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(7) bucket %d count %d badly skewed", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRange(t *testing.T) {
	r := New(6)
	for i := 0; i < 1000; i++ {
		v := r.Range(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Range(10,20) = %v", v)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(7)
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	if trues < 2200 || trues > 2800 {
		t.Fatalf("Bool(0.25) hit %d/10000", trues)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Normal stdev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestLogNormalMoments(t *testing.T) {
	r := New(9)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.LogNormal(100, 0.3)
		if v <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-100) > 1.5 {
		t.Fatalf("LogNormal mean = %v, want ~100", mean)
	}
}

func TestLogNormalZeroCV(t *testing.T) {
	r := New(10)
	if v := r.LogNormal(50, 0); v != 50 {
		t.Fatalf("LogNormal(50, 0) = %v, want exactly 50", v)
	}
}

func TestExpMean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(4)
		if v < 0 {
			t.Fatal("Exp produced negative value")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-4) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~4", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	for trial := 0; trial < 50; trial++ {
		n := 1 + trial
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(13)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("Shuffle duplicated %d: %v", v, xs)
		}
		seen[v] = true
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(14)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 7})]++
	}
	if counts[0] < 2000 || counts[0] > 4000 {
		t.Errorf("weight-1 bucket = %d, want ~3000", counts[0])
	}
	if counts[2] < 19000 || counts[2] > 23000 {
		t.Errorf("weight-7 bucket = %d, want ~21000", counts[2])
	}
}

func TestPickPanics(t *testing.T) {
	for _, ws := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pick(%v) did not panic", ws)
				}
			}()
			New(1).Pick(ws)
		}()
	}
}

// Property: Intn never escapes its bound for any seed/bound combination.
func TestIntnProperty(t *testing.T) {
	f := func(seed uint64, bound uint16) bool {
		n := int(bound%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: streams from Split never collide with each other in their
// first draws (collision probability ~2^-64 per pair, so any hit is a
// bug).
func TestSplitProperty(t *testing.T) {
	f := func(seed uint64) bool {
		root := New(seed)
		const k = 8
		var firsts [k]uint64
		for i := 0; i < k; i++ {
			firsts[i] = root.Split().Uint64()
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if firsts[i] == firsts[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
